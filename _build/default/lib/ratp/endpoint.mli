(** RaTP endpoints: reliable connectionless message transactions.

    RaTP is modeled on VMTP (as in the paper): a client performs a
    {e message transaction} — a request matched by a reply — with
    at-most-once semantics.  The transport handles fragmentation to
    the MTU, retransmission with exponential backoff, duplicate
    suppression through a server-side transaction cache, and explicit
    acknowledgement of replies so servers can release state early.

    Each endpoint owns the NIC of one machine and runs a receive loop
    process; server handlers run in their own processes so a slow
    handler never blocks reception. *)

type config = {
  frag_payload : int;  (** max message bytes per fragment *)
  retry_initial : Sim.Time.span;  (** first retransmission delay *)
  retry_backoff : float;  (** multiplier per retry *)
  max_attempts : int;  (** send attempts before giving up *)
  server_cache_ttl : Sim.Time.span;  (** reply retention for dedup *)
  proc_cost : Sim.Time.span;
      (** protocol processing charged per transaction step (request
          issue, request dispatch, reply issue, reply consumption) *)
}

val default_config : config
(** Calibrated so that a null transaction costs about twice the raw
    72-byte Ethernet round trip, matching the paper's 4.8 ms vs
    2.4 ms. *)

type error = Timeout
(** The transaction gave up after [max_attempts]. *)

type handler = src:Net.Address.t -> Packet.body -> Packet.body * int
(** A service: receives the request body, returns the reply body and
    its size in bytes.  Runs in a dedicated process; may block. *)

type t

val create :
  Net.Ethernet.t ->
  addr:Net.Address.t ->
  ?group:int ->
  ?config:config ->
  unit ->
  t
(** Attach to the Ethernet at [addr] and start the receive loop.
    [group] tags the endpoint's processes for {!Sim.Engine.kill_group}
    (machine crash). *)

val addr : t -> Net.Address.t
val config : t -> config

val serve : t -> service:int -> handler -> unit
(** Register the handler for a service id.  Replaces any previous
    handler for that id. *)

val call :
  t ->
  dst:Net.Address.t ->
  service:int ->
  size:int ->
  Packet.body ->
  (Packet.body, error) result
(** Perform a message transaction from the current process: fragment
    and send the request, await the complete reply, acknowledge it.
    Returns [Error Timeout] if no reply after [max_attempts]. *)

val restart : t -> unit
(** After a machine crash ({!Sim.Engine.kill_group} plus NIC detach),
    bring the endpoint back up: discard all transaction state and
    spawn a fresh receive loop.  The NIC must be reattached by the
    caller. *)

val retransmissions : t -> int
(** Request retransmissions performed by this endpoint (all
    transactions). *)

val transactions : t -> int
(** Completed client transactions. *)
