(** The name server — itself a Clouds object.

    Users give objects high-level names; the name server translates
    them to sysnames.  True to the paper's philosophy, the service is
    implemented {e as an application object}: the bindings live in
    the object's persistent data and heap, and lookups are ordinary
    invocations.  [boot] instantiates it and records its sysname in
    the cluster. *)

val cls : Obj_class.t
(** The "nameserver" class (entries: bind, lookup, unbind, list). *)

val boot : Object_manager.t -> Ra.Sysname.t
(** Load the class (if needed), create the instance and publish it as
    the cluster's name server.  Idempotent. *)

val bind : Object_manager.t -> name:string -> Ra.Sysname.t -> unit
(** Register or replace a binding (invokes the name-server object). *)

val lookup : Object_manager.t -> string -> Ra.Sysname.t option

val unbind : Object_manager.t -> string -> unit

val bindings : Object_manager.t -> (string * Ra.Sysname.t) list
(** All bindings, unordered. *)
