type region = Data | Heap | Volatile

type t = {
  mmu : Ra.Mmu.t;
  vspace : Ra.Virtual_space.t;
  data_base : int;
  data_len : int;
  heap_base : int;
  heap_len : int;
  vheap_base : int;
  vheap_len : int;
}

let make ~mmu ~vs ~data_base ~data_len ~heap_base ~heap_len ~vheap_base
    ~vheap_len =
  {
    mmu;
    vspace = vs;
    data_base;
    data_len;
    heap_base;
    heap_len;
    vheap_base;
    vheap_len;
  }

let vs t = t.vspace

let region_bounds t = function
  | Data -> (t.data_base, t.data_len)
  | Heap -> (t.heap_base, t.heap_len)
  | Volatile -> (t.vheap_base, t.vheap_len)

let region_size t region = snd (region_bounds t region)

let addr_of t region off len =
  let base, total = region_bounds t region in
  if off < 0 || len < 0 || off + len > total then
    invalid_arg "Memory: access outside region";
  base + off

let read t ?(region = Data) off ~len =
  let addr = addr_of t region off len in
  Ra.Mmu.read t.mmu t.vspace ~addr ~len

let write t ?(region = Data) off data =
  let addr = addr_of t region off (Bytes.length data) in
  Ra.Mmu.write t.mmu t.vspace ~addr data

let get_int t ?(region = Data) off =
  Int64.to_int (Bytes.get_int64_le (read t ~region off ~len:8) 0)

let set_int t ?(region = Data) off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  write t ~region off b

let get_byte t ?(region = Data) off =
  Char.code (Bytes.get (read t ~region off ~len:1) 0)

let set_byte t ?(region = Data) off v =
  write t ~region off (Bytes.make 1 (Char.chr (v land 0xff)))

let get_string t ?(region = Data) off =
  let len = Int32.to_int (Bytes.get_int32_le (read t ~region off ~len:4) 0) in
  if len < 0 then invalid_arg "Memory.get_string: corrupt length";
  Bytes.to_string (read t ~region (off + 4) ~len)

let set_string t ?(region = Data) off s =
  let b = Bytes.create (4 + String.length s) in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  Bytes.blit_string s 0 b 4 (String.length s);
  write t ~region off b

let string_footprint s = 4 + String.length s

let set_value t ?(region = Data) off v =
  let payload = Value.encode v in
  let b = Bytes.create (4 + Bytes.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 b 4 (Bytes.length payload);
  write t ~region off b

let get_value t ?(region = Data) off =
  let len = Int32.to_int (Bytes.get_int32_le (read t ~region off ~len:4) 0) in
  if len < 0 then invalid_arg "Memory.get_value: corrupt length";
  Value.decode (read t ~region (off + 4) ~len)

let value_footprint v = 4 + Value.size v
