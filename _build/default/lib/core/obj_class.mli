(** Clouds classes.

    A class is a compiled program module: a template from which any
    number of object instances are created.  In the prototype,
    classes were written in CC++ or Distributed Eiffel and loaded
    onto a data server; here a class is defined with this embedded
    OCaml DSL, which exposes the same programming model — typed entry
    points with consistency labels over a persistent memory image.

    Entry points carry the consistency label of §5.2.1: [S] (standard
    thread semantics), [Lcp] (local consistency preserving) or [Gcp]
    (global consistency preserving). *)

type consistency = S | Lcp | Gcp

type entry = {
  e_name : string;
  label : consistency;
  fn : Ctx.t -> Value.t -> Value.t;
}

type t = {
  c_name : string;
  code_pages : int;  (** size of the shared code segment *)
  data_pages : int;  (** persistent data segment per instance *)
  heap_pages : int;  (** persistent heap per instance *)
  vheap_pages : int;  (** volatile heap per activation *)
  entries : entry list;
  constructor : (Ctx.t -> Value.t -> unit) option;
      (** runs once when an instance is created *)
  daemons : (string * (Ctx.t -> unit)) list;
      (** active-object processes: started when the object first
          activates, for housekeeping and monitoring (the paper's
          "objects can be active" box); they die with their machine *)
}

val define :
  ?code_pages:int ->
  ?data_pages:int ->
  ?heap_pages:int ->
  ?vheap_pages:int ->
  ?constructor:(Ctx.t -> Value.t -> unit) ->
  ?daemons:(string * (Ctx.t -> unit)) list ->
  name:string ->
  entry list ->
  t
(** Defaults: 3 code pages, 1 data page, 2 heap pages, 2 volatile
    pages — a small object in the spirit of the paper's examples. *)

val entry : ?label:consistency -> string -> (Ctx.t -> Value.t -> Value.t) -> entry
(** An entry point; the default label is [S]. *)

val find_entry : t -> string -> entry option

val pp_consistency : Format.formatter -> consistency -> unit
