(** Heap allocators inside object memory.

    The paper gives each object a persistent heap (allocations become
    part of the object's persistent data) and a volatile heap
    (scratch that vanishes with the activation).  Both are instances
    of this allocator: a first-fit free list whose metadata lives
    {e inside} the managed region, so persistent-heap structure
    survives with the object's segments and is shared coherently
    through DSM.

    Block offsets returned by {!alloc} are plain integers relative to
    the region: they are meaningful only to code executing inside the
    object, which is exactly the paper's rule about addresses. *)

type t

val attach : Memory.t -> Memory.region -> t
(** Use the heap in the given region, initializing its header on
    first touch (detected by a magic word). *)

val alloc : t -> int -> int
(** [alloc t n] reserves [n] bytes ([n > 0]) and returns the offset
    of the block's payload.  Raises [Out_of_memory] when the region
    is exhausted. *)

val free : t -> int -> unit
(** Return a block (by its payload offset) to the free list.  Raises
    [Invalid_argument] on an offset that was not allocated. *)

val allocated_bytes : t -> int
(** Payload bytes currently allocated (excludes headers). *)

val mem : t -> Memory.t
val region : t -> Memory.region
