(** An object's memory image, as seen by the code in the object.

    A Clouds object's address space contains persistent data
    segments, a persistent heap, and a volatile heap (Figure 1 of the
    paper).  This module is the typed access layer entry-point code
    uses; every access goes through the node's MMU, so it demand-pages
    through DSM, charges the calibrated costs, and triggers the
    atomicity layer's lock/recovery hooks. *)

type region =
  | Data  (** persistent instance data *)
  | Heap  (** persistent heap: allocations survive with the object *)
  | Volatile  (** volatile heap: per-activation scratch *)

type t

val make :
  mmu:Ra.Mmu.t ->
  vs:Ra.Virtual_space.t ->
  data_base:int ->
  data_len:int ->
  heap_base:int ->
  heap_len:int ->
  vheap_base:int ->
  vheap_len:int ->
  t

val region_size : t -> region -> int

val read : t -> ?region:region -> int -> len:int -> bytes
(** [read t off ~len]: raises [Invalid_argument] when the range
    exceeds the region. *)

val write : t -> ?region:region -> int -> bytes -> unit
(** [write t off data]. *)

val get_int : t -> ?region:region -> int -> int
(** 8-byte little-endian integer at byte offset. *)

val set_int : t -> ?region:region -> int -> int -> unit

val get_byte : t -> ?region:region -> int -> int
val set_byte : t -> ?region:region -> int -> int -> unit

val get_string : t -> ?region:region -> int -> string
(** Length-prefixed (4-byte) string at byte offset. *)

val set_string : t -> ?region:region -> int -> string -> unit
(** Stores 4-byte length + bytes; needs [4 + length] bytes of room. *)

val string_footprint : string -> int
(** Bytes {!set_string} occupies for this string. *)

val get_value : t -> ?region:region -> int -> Value.t
(** A {!Value.t} stored with {!set_value}. *)

val set_value : t -> ?region:region -> int -> Value.t -> unit
val value_footprint : Value.t -> int

val vs : t -> Ra.Virtual_space.t
(** The underlying virtual space (for the object manager). *)
