(** The thread manager: user threads.

    A thread is the only form of user activity: a logical path of
    execution that enters objects via invocation and may span
    machines.  Starting a thread is a scheduling decision — the
    cluster picks a compute server (or the caller pins one) — and the
    thread runs its top-level invocation there, demand-paging the
    object in. *)

exception Failed of exn
(** Raised by {!join} when the thread's top-level invocation raised. *)

type t

val start :
  Object_manager.t ->
  ?origin:int ->
  ?on:int ->
  obj:Ra.Sysname.t ->
  entry:string ->
  Value.t ->
  t
(** Create a thread executing [entry] of [obj] with the argument.
    [origin] is the controlling workstation (terminal output routes
    there); [on] pins the compute server by address. *)

val id : t -> int
val origin : t -> int option
val node : t -> int
(** Address of the compute server the thread was scheduled on. *)

val join : t -> Value.t
(** Wait for completion and return the result.  Raises {!Failed}. *)

val try_join : t -> (Value.t, exn) result
(** Like {!join} without raising. *)

val peek : t -> (Value.t, exn) result option
(** Completion state without blocking. *)

exception Cancelled
(** Result of a thread terminated by {!kill}. *)

val kill : t -> unit
(** Terminate the thread's process; joiners receive
    [Error Cancelled].  Any transaction it held must be aborted
    separately (the atomicity manager's failure-detector path). *)

val visited : Object_manager.t -> t -> Ra.Sysname.t list
(** Objects the thread has entered, most recent first. *)
