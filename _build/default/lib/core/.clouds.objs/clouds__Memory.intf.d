lib/core/memory.mli: Ra Value
