lib/core/user_io.mli: Net Ra Terminal
