lib/core/name_server.mli: Obj_class Object_manager Ra
