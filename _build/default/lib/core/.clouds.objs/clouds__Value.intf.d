lib/core/value.mli: Format Ra
