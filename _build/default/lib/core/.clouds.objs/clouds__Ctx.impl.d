lib/core/ctx.ml: Hashtbl Memory Pheap Ra Sim Value
