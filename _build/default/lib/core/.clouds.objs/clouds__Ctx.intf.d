lib/core/ctx.mli: Hashtbl Memory Pheap Ra Sim Value
