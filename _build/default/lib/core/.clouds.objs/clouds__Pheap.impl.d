lib/core/pheap.ml: Memory
