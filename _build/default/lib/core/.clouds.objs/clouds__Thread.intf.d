lib/core/thread.mli: Object_manager Ra Value
