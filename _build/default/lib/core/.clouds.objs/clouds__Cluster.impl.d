lib/core/cluster.ml: Array Bytes Char Ctx Dsm Hashtbl List Net Obj_class Ra Sim Store Terminal User_io Value
