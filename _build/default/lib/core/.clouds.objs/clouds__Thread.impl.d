lib/core/thread.ml: Cluster Object_manager Printf Ra Sim Value
