lib/core/terminal.mli:
