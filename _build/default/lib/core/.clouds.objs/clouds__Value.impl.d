lib/core/value.ml: Buffer Bytes Float Format Int32 Int64 List Ra String
