lib/core/user_io.ml: Ra Ratp String Terminal
