lib/core/obj_class.mli: Ctx Format Value
