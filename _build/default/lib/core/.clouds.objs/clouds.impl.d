lib/core/clouds.ml: Cluster Ctx Memory Name_server Obj_class Object_manager Pheap Terminal Thread User_io Value
