lib/core/object_manager.mli: Cluster Net Ra Value
