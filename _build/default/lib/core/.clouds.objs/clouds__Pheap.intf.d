lib/core/pheap.mli: Memory
