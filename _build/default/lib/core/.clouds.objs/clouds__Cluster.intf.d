lib/core/cluster.mli: Ctx Dsm Hashtbl Net Obj_class Ra Ratp Sim Terminal Value
