lib/core/terminal.ml: List Queue
