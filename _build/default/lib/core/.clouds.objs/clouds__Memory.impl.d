lib/core/memory.ml: Bytes Char Int32 Int64 Ra String Value
