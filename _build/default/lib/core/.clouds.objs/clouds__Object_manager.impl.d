lib/core/object_manager.ml: Array Cluster Ctx Dsm Fun Hashtbl List Memory Obj_class Pheap Printexc Printf Ra Ratp Sim Store String User_io Value
