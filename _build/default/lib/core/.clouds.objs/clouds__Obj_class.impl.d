lib/core/obj_class.ml: Ctx Format List String Value
