lib/core/name_server.ml: Cluster Ctx List Memory Obj_class Object_manager Pheap Ra String Value
