(* Bindings are a singly linked list in the object's persistent heap;
   the head offset lives at byte 0 of the persistent data segment.
   Node layout: [next:8][name:4+n][sysname:4+m]. *)

let head_off = 0

let get_next ctx node = Memory.get_int ctx.Ctx.mem ~region:Memory.Heap node

let get_name ctx node =
  Memory.get_string ctx.Ctx.mem ~region:Memory.Heap (node + 8)

let get_sys ctx node =
  let name = get_name ctx node in
  Memory.get_string ctx.Ctx.mem ~region:Memory.Heap
    (node + 8 + Memory.string_footprint name)

let charge ctx =
  ctx.Ctx.compute ctx.Ctx.node.Ra.Node.params.Ra.Params.name_lookup

let fold ctx f init =
  let rec walk acc node =
    if node = 0 then acc else walk (f acc node) (get_next ctx node)
  in
  walk init (Memory.get_int ctx.Ctx.mem head_off)

let find ctx name =
  fold ctx
    (fun acc node ->
      match acc with
      | Some _ -> acc
      | None -> if String.equal (get_name ctx node) name then Some node else None)
    None

let remove ctx name =
  let rec walk prev node =
    if node = 0 then false
    else begin
      let next = get_next ctx node in
      if String.equal (get_name ctx node) name then begin
        (if prev = 0 then Memory.set_int ctx.Ctx.mem head_off next
         else Memory.set_int ctx.Ctx.mem ~region:Memory.Heap prev next);
        Pheap.free (ctx.Ctx.pheap ()) node;
        true
      end
      else walk node next
    end
  in
  walk 0 (Memory.get_int ctx.Ctx.mem head_off)

let insert ctx name sys =
  let size = 8 + Memory.string_footprint name + Memory.string_footprint sys in
  let node = Pheap.alloc (ctx.Ctx.pheap ()) size in
  Memory.set_int ctx.Ctx.mem ~region:Memory.Heap node
    (Memory.get_int ctx.Ctx.mem head_off);
  Memory.set_string ctx.Ctx.mem ~region:Memory.Heap (node + 8) name;
  Memory.set_string ctx.Ctx.mem ~region:Memory.Heap
    (node + 8 + Memory.string_footprint name)
    sys;
  Memory.set_int ctx.Ctx.mem head_off node

let cls =
  Obj_class.define ~name:"nameserver" ~heap_pages:4
    [
      (* binds are local consistency preserving: with the atomicity
         manager installed they commit to the data server, so names
         survive compute-server crashes; without it they degrade to
         s-thread semantics *)
      Obj_class.entry ~label:Obj_class.Lcp "bind" (fun ctx arg ->
          charge ctx;
          let name_v, sys_v = Value.to_pair arg in
          let name = Value.to_string name_v in
          let sys = Value.to_string sys_v in
          ignore (remove ctx name);
          insert ctx name sys;
          Value.Unit);
      Obj_class.entry "lookup" (fun ctx arg ->
          charge ctx;
          let name = Value.to_string arg in
          match find ctx name with
          | Some node -> Value.Str (get_sys ctx node)
          | None -> Value.Unit);
      Obj_class.entry ~label:Obj_class.Lcp "unbind" (fun ctx arg ->
          charge ctx;
          Value.Bool (remove ctx (Value.to_string arg)));
      Obj_class.entry "list" (fun ctx _arg ->
          charge ctx;
          Value.List
            (fold ctx
               (fun acc node ->
                 Value.Pair
                   (Value.Str (get_name ctx node), Value.Str (get_sys ctx node))
                 :: acc)
               []));
    ]

let boot om =
  let cl = Object_manager.cluster om in
  match cl.Cluster.name_server with
  | Some s -> s
  | None ->
      if Cluster.find_class cl "nameserver" = None then
        Cluster.register_class cl cls;
      let obj = Object_manager.create_object om ~class_name:"nameserver" Value.Unit in
      cl.Cluster.name_server <- Some obj;
      obj

let ns_invoke om entry arg =
  let cl = Object_manager.cluster om in
  let ns = boot om in
  let node = Cluster.pick_compute cl in
  Object_manager.invoke om ~node ~thread_id:0 ~origin:None ~txn:None ~obj:ns
    ~entry arg

let bind om ~name sys =
  match
    ns_invoke om "bind"
      (Value.Pair (Value.Str name, Value.Str (Ra.Sysname.to_string sys)))
  with
  | Value.Unit -> ()
  | _ -> failwith "name server: bad bind reply"

let lookup om name =
  match ns_invoke om "lookup" (Value.Str name) with
  | Value.Str s -> Ra.Sysname.of_string s
  | Value.Unit -> None
  | _ -> failwith "name server: bad lookup reply"

let unbind om name = ignore (ns_invoke om "unbind" (Value.Str name))

let bindings om =
  match ns_invoke om "list" Value.Unit with
  | Value.List l ->
      List.filter_map
        (fun v ->
          match v with
          | Value.Pair (Value.Str n, Value.Str s) -> (
              match Ra.Sysname.of_string s with
              | Some sys -> Some (n, sys)
              | None -> None)
          | _ -> None)
        l
  | _ -> []
