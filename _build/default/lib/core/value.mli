(** Invocation values.

    Arguments and results of object invocations are strictly data —
    never addresses — because addresses in one object are meaningless
    in another.  This type makes that restriction structural: there
    is no constructor for a pointer.  Values have a wire size (used
    for transfer timing) and a byte codec (used to store them in
    persistent object memory). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

val size : t -> int
(** Serialized size in bytes. *)

val encode : t -> bytes
val decode : bytes -> t
(** [decode (encode v) = v].  Raises [Invalid_argument] on malformed
    input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Convenience accessors} — raise [Invalid_argument] on the wrong
    constructor. *)

val to_int : t -> int
val to_string : t -> string
val to_bool : t -> bool
val to_float : t -> float
val to_pair : t -> t * t
val to_list : t -> t list

val of_sysname : Ra.Sysname.t -> t
(** Sysnames travel as strings: they are names, not addresses. *)

val to_sysname : t -> Ra.Sysname.t
