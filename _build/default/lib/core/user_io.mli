(** The user I/O manager.

    Threads read and write ASCII to the controlling terminal
    regardless of where they execute: output is routed over RaTP to
    the originating workstation's terminal server. *)

val service : int
(** RaTP service id served by every workstation. *)

val install : Ra.Node.t -> Terminal.t -> unit
(** Serve this workstation's terminal. *)

val remote_print : Ra.Node.t -> workstation:Net.Address.t -> string -> unit
(** Send one output line from the node currently running the thread
    to its controlling workstation.  Unreachable workstations drop
    output silently (the user is gone). *)

val remote_read_line :
  Ra.Node.t -> workstation:Net.Address.t -> string option
(** Fetch a line of typed input, if any. *)
