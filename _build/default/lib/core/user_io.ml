let service = 20

type Ratp.Packet.body +=
  | Io_print of string
  | Io_read
  | Io_line of string option
  | Io_ok

let install node terminal =
  Ratp.Endpoint.serve node.Ra.Node.endpoint ~service (fun ~src:_ body ->
      match body with
      | Io_print line ->
          Terminal.print terminal line;
          (Io_ok, 16)
      | Io_read ->
          let line = Terminal.read_line terminal in
          let size =
            match line with Some s -> 24 + String.length s | None -> 24
          in
          (Io_line line, size)
      | _ -> (Io_ok, 16))

let remote_print node ~workstation line =
  match
    Ratp.Endpoint.call node.Ra.Node.endpoint ~dst:workstation ~service
      ~size:(24 + String.length line)
      (Io_print line)
  with
  | Ok _ | Error Ratp.Endpoint.Timeout -> ()

let remote_read_line node ~workstation =
  match
    Ratp.Endpoint.call node.Ra.Node.endpoint ~dst:workstation ~service ~size:16
      Io_read
  with
  | Ok (Io_line l) -> l
  | Ok _ | Error Ratp.Endpoint.Timeout -> None
