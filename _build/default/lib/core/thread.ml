exception Failed of exn
exception Cancelled

type t = {
  id : int;
  origin : int option;
  node_id : int;
  eng : Sim.Engine.t;
  mutable pid : Sim.Engine.pid;
  result : (Value.t, exn) result Sim.Ivar.t;
  mutable visit_log : Ra.Sysname.t list;
}

let id t = t.id
let origin t = t.origin
let node t = t.node_id

let start om ?origin ?on ~obj ~entry arg =
  let cl = Object_manager.cluster om in
  let node =
    match on with
    | Some addr -> (
        match Cluster.node_by_id cl addr with
        | Some n when n.Ra.Node.kind = Ra.Node.Compute -> n
        | Some _ | None -> invalid_arg "Thread.start: not a compute server")
    | None -> Cluster.pick_compute cl
  in
  let tid = cl.Cluster.next_thread in
  cl.Cluster.next_thread <- tid + 1;
  let t =
    {
      id = tid;
      origin;
      node_id = node.Ra.Node.id;
      eng = cl.Cluster.eng;
      pid = 0;
      result = Sim.Ivar.create ();
      visit_log = [];
    }
  in
  t.pid <-
    (Ra.Node.spawn node
       (Printf.sprintf "thread-%d" tid)
       (fun () ->
         Ra.Isiba.compute node cl.Cluster.params.Ra.Params.thread_create;
         let outcome =
           match
             Object_manager.invoke om ~node ~thread_id:tid ~origin ~txn:None
               ~obj ~entry arg
           with
           | v -> Ok v
           | exception e -> Error e
         in
         t.visit_log <- Object_manager.visited om tid;
         Object_manager.end_thread om tid;
         ignore (Sim.Ivar.try_fill t.result outcome)));
  node.Ra.Node.sched_load <- node.Ra.Node.sched_load + 1;
  (* on_terminate runs exactly once however the thread ends: it keeps
     the scheduler's load view correct and makes sure joiners get an
     answer even if the thread's machine crashed *)
  Sim.Engine.on_terminate t.eng t.pid (fun () ->
      node.Ra.Node.sched_load <- node.Ra.Node.sched_load - 1;
      ignore (Sim.Ivar.try_fill t.result (Error Cancelled)));
  t

let kill t =
  Sim.Engine.kill t.eng t.pid;
  ignore (Sim.Ivar.try_fill t.result (Error Cancelled))

let try_join t = Sim.Ivar.read t.result

let join t =
  match try_join t with Ok v -> v | Error e -> raise (Failed e)

let peek t = Sim.Ivar.peek t.result

let visited om t =
  match Object_manager.visited om t.id with
  | [] -> t.visit_log
  | live -> live
