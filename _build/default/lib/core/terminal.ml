type t = {
  wid : int;
  mutable rev_output : string list;
  input : string Queue.t;
  mutable echo : bool;
}

let create ~wid = { wid; rev_output = []; input = Queue.create (); echo = false }

let print t line =
  t.rev_output <- line :: t.rev_output;
  if t.echo then print_endline line

let output t = List.rev t.rev_output
let feed t line = Queue.add line t.input
let read_line t = Queue.take_opt t.input
let set_echo t v = t.echo <- v
let wid t = t.wid
