type consistency = S | Lcp | Gcp

type entry = {
  e_name : string;
  label : consistency;
  fn : Ctx.t -> Value.t -> Value.t;
}

type t = {
  c_name : string;
  code_pages : int;
  data_pages : int;
  heap_pages : int;
  vheap_pages : int;
  entries : entry list;
  constructor : (Ctx.t -> Value.t -> unit) option;
  daemons : (string * (Ctx.t -> unit)) list;
}

let define ?(code_pages = 3) ?(data_pages = 1) ?(heap_pages = 2)
    ?(vheap_pages = 2) ?constructor ?(daemons = []) ~name entries =
  if code_pages <= 0 || data_pages <= 0 || heap_pages <= 0 || vheap_pages <= 0
  then invalid_arg "Obj_class.define: page counts must be positive";
  let names = List.map (fun e -> e.e_name) entries in
  let distinct = List.sort_uniq String.compare names in
  if List.length distinct <> List.length names then
    invalid_arg "Obj_class.define: duplicate entry names";
  {
    c_name = name;
    code_pages;
    data_pages;
    heap_pages;
    vheap_pages;
    entries;
    constructor;
    daemons;
  }

let entry ?(label = S) e_name fn = { e_name; label; fn }

let find_entry t name =
  List.find_opt (fun e -> String.equal e.e_name name) t.entries

let pp_consistency fmt = function
  | S -> Format.pp_print_string fmt "S"
  | Lcp -> Format.pp_print_string fmt "LCP"
  | Gcp -> Format.pp_print_string fmt "GCP"
