(* Region layout:
     [0..8)   magic
     [8..16)  bump pointer (next never-used byte)
     [16..24) free-list head (0 = empty)
     [24..32) allocated payload bytes
   Block layout, at offset b:
     [b..b+8)   payload size
     [b+8..b+16) next free block (meaningful while on the free list)
     [b+16..)    payload
   Payload offsets handed out point at b+16. *)

type t = { memory : Memory.t; reg : Memory.region }

let magic = 0x436c6f756473_48 (* "Clouds-H" ish *)
let header_bytes = 32
let block_header = 16

let off_magic = 0
let off_bump = 8
let off_free = 16
let off_live = 24

let attach memory reg =
  let t = { memory; reg } in
  if Memory.get_int memory ~region:reg off_magic <> magic then begin
    Memory.set_int memory ~region:reg off_magic magic;
    Memory.set_int memory ~region:reg off_bump header_bytes;
    Memory.set_int memory ~region:reg off_free 0;
    Memory.set_int memory ~region:reg off_live 0
  end;
  t

let mem t = t.memory
let region t = t.reg

let get t off = Memory.get_int t.memory ~region:t.reg off
let set t off v = Memory.set_int t.memory ~region:t.reg off v

(* First fit on the free list. *)
let take_from_free_list t n =
  let rec walk prev cur =
    if cur = 0 then None
    else begin
      let size = get t cur in
      let next = get t (cur + 8) in
      if size >= n then begin
        (if prev = 0 then set t off_free next else set t (prev + 8) next);
        Some cur
      end
      else walk cur next
    end
  in
  walk 0 (get t off_free)

let alloc t n =
  if n <= 0 then invalid_arg "Pheap.alloc: non-positive size";
  let block =
    match take_from_free_list t n with
    | Some b -> b
    | None ->
        let bump = get t off_bump in
        let needed = bump + block_header + n in
        if needed > Memory.region_size t.memory t.reg then raise Out_of_memory;
        set t off_bump needed;
        set t bump n;
        bump
  in
  set t (block + 8) 0;
  set t off_live (get t off_live + get t block);
  block + block_header

let free t payload_off =
  let block = payload_off - block_header in
  if block < header_bytes then invalid_arg "Pheap.free: bad offset";
  let size = get t block in
  if size <= 0 || block + block_header + size > get t off_bump then
    invalid_arg "Pheap.free: not an allocated block";
  set t (block + 8) (get t off_free);
  set t off_free block;
  set t off_live (get t off_live - size)

let allocated_bytes t = get t off_live
