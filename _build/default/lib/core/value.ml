type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

let rec size = function
  | Unit -> 1
  | Bool _ -> 2
  | Int _ -> 9
  | Float _ -> 9
  | Str s -> 5 + String.length s
  | Pair (a, b) -> 1 + size a + size b
  | List l -> 5 + List.fold_left (fun acc v -> acc + size v) 0 l

let rec write buf v =
  match v with
  | Unit -> Buffer.add_char buf '\000'
  | Bool b ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Int n ->
      Buffer.add_char buf '\002';
      Buffer.add_int64_le buf (Int64.of_int n)
  | Float f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Str s ->
      Buffer.add_char buf '\004';
      Buffer.add_int32_le buf (Int32.of_int (String.length s));
      Buffer.add_string buf s
  | Pair (a, b) ->
      Buffer.add_char buf '\005';
      write buf a;
      write buf b
  | List l ->
      Buffer.add_char buf '\006';
      Buffer.add_int32_le buf (Int32.of_int (List.length l));
      List.iter (write buf) l

let encode v =
  let buf = Buffer.create 64 in
  write buf v;
  Buffer.to_bytes buf

let decode b =
  let pos = ref 0 in
  let byte () =
    if !pos >= Bytes.length b then invalid_arg "Value.decode: truncated";
    let c = Bytes.get b !pos in
    incr pos;
    c
  in
  let int64 () =
    if !pos + 8 > Bytes.length b then invalid_arg "Value.decode: truncated";
    let v = Bytes.get_int64_le b !pos in
    pos := !pos + 8;
    v
  in
  let int32 () =
    if !pos + 4 > Bytes.length b then invalid_arg "Value.decode: truncated";
    let v = Int32.to_int (Bytes.get_int32_le b !pos) in
    pos := !pos + 4;
    v
  in
  let rec go () =
    match byte () with
    | '\000' -> Unit
    | '\001' -> Bool (byte () = '\001')
    | '\002' -> Int (Int64.to_int (int64 ()))
    | '\003' -> Float (Int64.float_of_bits (int64 ()))
    | '\004' ->
        let n = int32 () in
        if n < 0 || !pos + n > Bytes.length b then
          invalid_arg "Value.decode: bad string length";
        let s = Bytes.sub_string b !pos n in
        pos := !pos + n;
        Str s
    | '\005' ->
        let a = go () in
        let b = go () in
        Pair (a, b)
    | '\006' ->
        let n = int32 () in
        if n < 0 then invalid_arg "Value.decode: bad list length";
        List (List.init n (fun _ -> go ()))
    | _ -> invalid_arg "Value.decode: bad tag"
  in
  let v = go () in
  if !pos <> Bytes.length b then invalid_arg "Value.decode: trailing bytes";
  v

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List x, List y -> (
      try List.for_all2 equal x y with Invalid_argument _ -> false)
  | (Unit | Bool _ | Int _ | Float _ | Str _ | Pair _ | List _), _ -> false

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int n -> Format.pp_print_int fmt n
  | Float f -> Format.pp_print_float fmt f
  | Str s -> Format.fprintf fmt "%S" s
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
        l

let to_int = function Int n -> n | _ -> invalid_arg "Value.to_int"
let to_string = function Str s -> s | _ -> invalid_arg "Value.to_string"
let to_bool = function Bool b -> b | _ -> invalid_arg "Value.to_bool"
let to_float = function Float f -> f | _ -> invalid_arg "Value.to_float"
let to_pair = function Pair (a, b) -> (a, b) | _ -> invalid_arg "Value.to_pair"
let to_list = function List l -> l | _ -> invalid_arg "Value.to_list"

let of_sysname s = Str (Ra.Sysname.to_string s)

let to_sysname = function
  | Str s -> (
      match Ra.Sysname.of_string s with
      | Some name -> name
      | None -> invalid_arg "Value.to_sysname: bad format")
  | _ -> invalid_arg "Value.to_sysname"
