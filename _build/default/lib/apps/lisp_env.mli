(** A persistent Lisp programming environment (paper §5.1).

    The paper's research agenda includes making a Lisp environment's
    address space persistent — no image save/load at startup and
    shutdown — and invoking entry points in {e remote} Lisp
    interpreters for inter-environment operations.  This object is
    that: a small Scheme-ish interpreter whose global environment
    lives in the object's persistent memory, so definitions survive
    across invocations, across compute servers, and across machine
    crashes; the [remote] builtin evaluates an expression inside
    another Lisp environment object by sysname.

    Language: integers, strings, symbols, pairs/lists; special forms
    [quote define set! if lambda let begin and or]; builtins
    [+ - * / = < > <= >= cons car cdr list null? eq? not length
    append remote].  Lambdas close over their definition-time
    bindings by value (the environment is first-class data, which is
    what makes it persistable). *)

val register : Clouds.Object_manager.t -> unit

val create : Clouds.Object_manager.t -> Ra.Sysname.t
(** A fresh environment with only the builtins. *)

exception Lisp_error of string
(** Parse or evaluation error, re-raised on the invoking side. *)

val eval : Clouds.Object_manager.t -> Ra.Sysname.t -> string -> string
(** Evaluate one expression in the environment and return the printed
    result.  Definitions persist. *)

val eval_durable :
  Clouds.Object_manager.t -> Ra.Sysname.t -> string -> string
(** Like {!eval} but as a gcp transaction: the updated environment is
    committed to the data server before returning. *)

val bindings : Clouds.Object_manager.t -> Ra.Sysname.t -> string list
(** Names defined in the global environment. *)
