(** A replicated-bank workload: accounts and transfers with
    selectable consistency (§5.2).

    Accounts keep their balance in persistent object data.  Deposits
    and withdrawals exist in all three consistency flavours so
    experiments can compare s-, lcp- and gcp-thread costs on the same
    workload; transfers are global transactions across two account
    objects (which may live on different data servers). *)

val register : Clouds.Object_manager.t -> unit
(** Load the "bank-account" and "bank-office" classes (idempotent). *)

val open_account :
  Clouds.Object_manager.t -> ?home:Net.Address.t -> balance:int -> unit ->
  Ra.Sysname.t

val balance : Clouds.Object_manager.t -> Ra.Sysname.t -> int
(** Read (s-thread semantics). *)

val deposit :
  Clouds.Object_manager.t ->
  mode:Clouds.Obj_class.consistency ->
  Ra.Sysname.t ->
  int ->
  int
(** Deposit with the given consistency label; returns the new
    balance. *)

val create_office : Clouds.Object_manager.t -> Ra.Sysname.t
(** The office object performs transfers between accounts. *)

val transfer :
  Clouds.Object_manager.t ->
  office:Ra.Sysname.t ->
  from_acct:Ra.Sysname.t ->
  to_acct:Ra.Sysname.t ->
  int ->
  unit
(** Atomically move money between two accounts (gcp transaction,
    two-phase commit when the accounts live on different data
    servers).  Raises {!Insufficient} if funds are missing. *)

exception Insufficient
