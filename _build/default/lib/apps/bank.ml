module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory

exception Insufficient

let get ctx = Mem.get_int ctx.Clouds.Ctx.mem 0
let set ctx v = Mem.set_int ctx.Clouds.Ctx.mem 0 v

let deposit_entry ctx arg =
  let v = get ctx in
  ctx.Clouds.Ctx.compute (Sim.Time.us 150);
  set ctx (v + V.to_int arg);
  V.Int (v + V.to_int arg)

let withdraw_entry ctx arg =
  let amount = V.to_int arg in
  let v = get ctx in
  ctx.Clouds.Ctx.compute (Sim.Time.us 150);
  if v < amount then raise Insufficient;
  set ctx (v - amount);
  V.Int (v - amount)

let account_cls =
  Clouds.Obj_class.define ~name:"bank-account"
    ~constructor:(fun ctx arg -> set ctx (V.to_int arg))
    [
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "deposit" deposit_entry;
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Lcp "deposit_lcp"
        deposit_entry;
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.S "deposit_s" deposit_entry;
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "withdraw"
        withdraw_entry;
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.S "balance" (fun ctx _ ->
          V.Int (get ctx));
      (* unlabelled pieces used inside ambient transactions *)
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.S "credit_in_txn"
        (fun ctx arg ->
          set ctx (get ctx + V.to_int arg);
          V.Unit);
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.S "debit_in_txn"
        (fun ctx arg ->
          let amount = V.to_int arg in
          let v = get ctx in
          if v < amount then raise Insufficient;
          set ctx (v - amount);
          V.Unit);
    ]

let office_cls =
  Clouds.Obj_class.define ~name:"bank-office"
    [
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "transfer"
        (fun ctx arg ->
          match V.to_list arg with
          | [ from_v; to_v; amount ] ->
              ignore
                (ctx.Clouds.Ctx.invoke ~obj:(V.to_sysname from_v)
                   ~entry:"debit_in_txn" amount);
              ctx.Clouds.Ctx.compute (Sim.Time.us 300);
              ignore
                (ctx.Clouds.Ctx.invoke ~obj:(V.to_sysname to_v)
                   ~entry:"credit_in_txn" amount);
              V.Unit
          | _ -> invalid_arg "transfer");
    ]

let register om =
  let cl = Clouds.Object_manager.cluster om in
  if Cl.find_class cl "bank-account" = None then
    Cl.register_class cl account_cls;
  if Cl.find_class cl "bank-office" = None then Cl.register_class cl office_cls

let open_account om ?home ~balance () =
  register om;
  Clouds.Object_manager.create_object om ?home ~class_name:"bank-account"
    (V.Int balance)

let invoke0 om obj entry arg =
  let cl = Clouds.Object_manager.cluster om in
  Clouds.Object_manager.invoke om ~node:(Cl.pick_compute cl) ~thread_id:0
    ~origin:None ~txn:None ~obj ~entry arg

let balance om acct = V.to_int (invoke0 om acct "balance" V.Unit)

let deposit om ~mode acct amount =
  let entry =
    match mode with
    | Clouds.Obj_class.Gcp -> "deposit"
    | Clouds.Obj_class.Lcp -> "deposit_lcp"
    | Clouds.Obj_class.S -> "deposit_s"
  in
  V.to_int (invoke0 om acct entry (V.Int amount))

let create_office om =
  register om;
  Clouds.Object_manager.create_object om ~class_name:"bank-office" V.Unit

let transfer om ~office ~from_acct ~to_acct amount =
  match
    invoke0 om office "transfer"
      (V.List [ V.of_sysname from_acct; V.of_sysname to_acct; V.Int amount ])
  with
  | V.Unit -> ()
  | _ -> failwith "Bank.transfer: bad reply"
