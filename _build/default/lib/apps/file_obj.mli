(** Files simulated by objects ("No Files? No Messages?" box).

    Clouds has no files; an object storing byte-sequential data with
    read and write entry points looks exactly like one.  Offsets and
    lengths are plain values; the bytes live in the object's
    persistent data segment. *)

val register : Clouds.Object_manager.t -> capacity:int -> string
(** Register a file class with room for [capacity] bytes; returns the
    class name. *)

val create : Clouds.Object_manager.t -> capacity:int -> Ra.Sysname.t

val size : Clouds.Object_manager.t -> Ra.Sysname.t -> int

val read :
  Clouds.Object_manager.t -> Ra.Sysname.t -> off:int -> len:int -> string
(** Reads are clamped to the current size. *)

val write :
  Clouds.Object_manager.t -> Ra.Sysname.t -> off:int -> string -> unit
(** Extends the file as needed (within capacity). *)

val append : Clouds.Object_manager.t -> Ra.Sysname.t -> string -> unit
val truncate : Clouds.Object_manager.t -> Ra.Sysname.t -> int -> unit
