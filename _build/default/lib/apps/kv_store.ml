module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory
module Ph = Clouds.Pheap

let buckets = 64
let off_count = 0
let bucket_off b = 64 + (8 * b)
let bucket_of key = Hashtbl.hash key mod buckets

(* heap node layout: [next:8][key:4+k][value:4+v] *)
let node_next ctx n = Mem.get_int ctx.Clouds.Ctx.mem ~region:Mem.Heap n
let node_key ctx n = Mem.get_string ctx.Clouds.Ctx.mem ~region:Mem.Heap (n + 8)

let node_value ctx n =
  let key = node_key ctx n in
  Mem.get_value ctx.Clouds.Ctx.mem ~region:Mem.Heap
    (n + 8 + Mem.string_footprint key)

let charge ctx = ctx.Clouds.Ctx.compute (Sim.Time.us 80)

let find_node ctx key =
  let rec walk n =
    if n = 0 then None
    else if String.equal (node_key ctx n) key then Some n
    else walk (node_next ctx n)
  in
  walk (Mem.get_int ctx.Clouds.Ctx.mem (bucket_off (bucket_of key)))

let remove_node ctx key =
  let boff = bucket_off (bucket_of key) in
  let rec walk prev n =
    if n = 0 then false
    else begin
      let next = node_next ctx n in
      if String.equal (node_key ctx n) key then begin
        (if prev = 0 then Mem.set_int ctx.Clouds.Ctx.mem boff next
         else Mem.set_int ctx.Clouds.Ctx.mem ~region:Mem.Heap prev next);
        Ph.free (ctx.Clouds.Ctx.pheap ()) n;
        Mem.set_int ctx.Clouds.Ctx.mem off_count
          (Mem.get_int ctx.Clouds.Ctx.mem off_count - 1);
        true
      end
      else walk n next
    end
  in
  walk 0 (Mem.get_int ctx.Clouds.Ctx.mem boff)

let insert_node ctx key value =
  let boff = bucket_off (bucket_of key) in
  let size = 8 + Mem.string_footprint key + Mem.value_footprint value in
  let n = Ph.alloc (ctx.Clouds.Ctx.pheap ()) size in
  Mem.set_int ctx.Clouds.Ctx.mem ~region:Mem.Heap n
    (Mem.get_int ctx.Clouds.Ctx.mem boff);
  Mem.set_string ctx.Clouds.Ctx.mem ~region:Mem.Heap (n + 8) key;
  Mem.set_value ctx.Clouds.Ctx.mem ~region:Mem.Heap
    (n + 8 + Mem.string_footprint key)
    value;
  Mem.set_int ctx.Clouds.Ctx.mem boff n;
  Mem.set_int ctx.Clouds.Ctx.mem off_count
    (Mem.get_int ctx.Clouds.Ctx.mem off_count + 1)

let put_fn ctx arg =
  charge ctx;
  let key_v, value = V.to_pair arg in
  let key = V.to_string key_v in
  ignore (remove_node ctx key);
  insert_node ctx key value;
  V.Unit

let cls =
  Clouds.Obj_class.define ~name:"kvstore" ~heap_pages:16
    [
      Clouds.Obj_class.entry "put" put_fn;
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "put_durable" put_fn;
      Clouds.Obj_class.entry "get" (fun ctx arg ->
          charge ctx;
          match find_node ctx (V.to_string arg) with
          | Some n -> V.Pair (V.Bool true, node_value ctx n)
          | None -> V.Pair (V.Bool false, V.Unit));
      Clouds.Obj_class.entry "delete" (fun ctx arg ->
          charge ctx;
          V.Bool (remove_node ctx (V.to_string arg)));
      Clouds.Obj_class.entry "count" (fun ctx _ ->
          V.Int (Mem.get_int ctx.Clouds.Ctx.mem off_count));
      Clouds.Obj_class.entry "keys" (fun ctx _ ->
          charge ctx;
          let acc = ref [] in
          for b = 0 to buckets - 1 do
            let rec walk n =
              if n <> 0 then begin
                acc := V.Str (node_key ctx n) :: !acc;
                walk (node_next ctx n)
              end
            in
            walk (Mem.get_int ctx.Clouds.Ctx.mem (bucket_off b))
          done;
          V.List !acc);
    ]

let register om =
  let cl = Clouds.Object_manager.cluster om in
  if Cl.find_class cl "kvstore" = None then Cl.register_class cl cls

let create om =
  register om;
  Clouds.Object_manager.create_object om ~class_name:"kvstore" V.Unit

let invoke0 om obj entry arg =
  let cl = Clouds.Object_manager.cluster om in
  Clouds.Object_manager.invoke om ~node:(Cl.pick_compute cl) ~thread_id:0
    ~origin:None ~txn:None ~obj ~entry arg

let put om obj key value =
  ignore (invoke0 om obj "put" (V.Pair (V.Str key, value)))

let put_durable om obj key value =
  ignore (invoke0 om obj "put_durable" (V.Pair (V.Str key, value)))

let get om obj key =
  match invoke0 om obj "get" (V.Str key) with
  | V.Pair (V.Bool true, v) -> Some v
  | V.Pair (V.Bool false, _) -> None
  | _ -> failwith "Kv_store.get: bad reply"

let delete om obj key = V.to_bool (invoke0 om obj "delete" (V.Str key))
let count om obj = V.to_int (invoke0 om obj "count" V.Unit)

let keys om obj =
  match invoke0 om obj "keys" V.Unit with
  | V.List l -> List.map V.to_string l
  | _ -> failwith "Kv_store.keys: bad reply"
