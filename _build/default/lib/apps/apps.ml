(** Application objects built on the public Clouds API: the workloads
    the paper's introduction and research sections motivate.

    - {!Sorter}: the §5.1 distributed-programming experiment
      (centralized data, distributed computation over DSM);
    - {!Bank}: accounts and transfers under s / lcp / gcp consistency
      (§5.2.1), also the PET example's workload;
    - {!Kv_store}: structured persistent memory (directory in data,
      chains in the persistent heap);
    - {!File_obj} and {!Port}: files and messages simulated by
      objects ("No Files? No Messages?");
    - {!Sensor}: an active object whose internal daemon monitors a
      device. *)

module Sorter = Sorter
module Bank = Bank
module Kv_store = Kv_store
module File_obj = File_obj
module Port = Port
module Sensor = Sensor
module Lisp_env = Lisp_env
