(** A persistent key-value store inside one Clouds object.

    Demonstrates structured persistent memory: a bucket array in the
    data segment and chained entries in the persistent heap — the
    paper's point that data can stay in memory "in a form controlled
    by the programs (e.g. lists, trees), even when not in use".
    Values are arbitrary {!Clouds.Value.t}s. *)

val register : Clouds.Object_manager.t -> unit
val create : Clouds.Object_manager.t -> Ra.Sysname.t

val put :
  Clouds.Object_manager.t -> Ra.Sysname.t -> string -> Clouds.Value.t -> unit
(** Insert or replace. *)

val put_durable :
  Clouds.Object_manager.t -> Ra.Sysname.t -> string -> Clouds.Value.t -> unit
(** Like {!put} but as a gcp transaction: committed to stable storage
    before returning. *)

val get :
  Clouds.Object_manager.t -> Ra.Sysname.t -> string -> Clouds.Value.t option

val delete : Clouds.Object_manager.t -> Ra.Sysname.t -> string -> bool
val count : Clouds.Object_manager.t -> Ra.Sysname.t -> int
val keys : Clouds.Object_manager.t -> Ra.Sysname.t -> string list

val buckets : int
(** Fixed bucket count of the hash directory. *)
