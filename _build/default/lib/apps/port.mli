(** Messages simulated by objects (the other half of the "No Files?
    No Messages?" box).

    A buffer object with send and receive entry points acts as a port
    between communicating threads: the message queue lives in the
    object's persistent heap, and a system semaphore blocks receivers
    until something arrives.  Blocking receive pairs threads on the
    same compute server; [try_receive] works from anywhere. *)

val register : Clouds.Object_manager.t -> unit
val create : Clouds.Object_manager.t -> Ra.Sysname.t

val send : Clouds.Object_manager.t -> Ra.Sysname.t -> Clouds.Value.t -> unit

val receive :
  Clouds.Object_manager.t -> ?on:int -> Ra.Sysname.t -> Clouds.Value.t
(** Blocks until a message is available.  [on] pins the compute
    server (senders must share it for the wakeup to be seen). *)

val try_receive :
  Clouds.Object_manager.t -> Ra.Sysname.t -> Clouds.Value.t option

val pending : Clouds.Object_manager.t -> Ra.Sysname.t -> int
