(** An active sensor object (the paper's "objects can be active"
    box).

    The object encapsulates a sensing device: a daemon process inside
    it samples the (simulated) device periodically into a persistent
    ring buffer, and invocations read the gathered data without
    knowing anything about the device or even where it is.  The
    daemon can also notify another object when a reading crosses a
    threshold — the event-notification pattern the paper describes. *)

val register :
  Clouds.Object_manager.t ->
  ?interval:Sim.Time.span ->
  ?threshold:int ->
  unit ->
  unit
(** Load the sensor class.  [interval] is the sampling period
    (default 50 ms); readings above [threshold] (default 90) are
    reported to the alarm object if one is configured. *)

val create :
  Clouds.Object_manager.t -> ?alarm:Ra.Sysname.t -> unit -> Ra.Sysname.t
(** New sensor; [alarm] is an object with a "notify" entry that
    receives [Pair (sensor_sysname, reading)]. *)

val latest : Clouds.Object_manager.t -> Ra.Sysname.t -> int option
val sample_count : Clouds.Object_manager.t -> Ra.Sysname.t -> int
val history : Clouds.Object_manager.t -> Ra.Sysname.t -> n:int -> int list

val capacity : int
(** Ring-buffer capacity. *)
