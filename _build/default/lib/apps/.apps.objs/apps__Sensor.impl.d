lib/apps/sensor.ml: Clouds List Ra Sim
