lib/apps/sorter.mli: Clouds Ra
