lib/apps/file_obj.ml: Bytes Clouds Printf Ra Sim String
