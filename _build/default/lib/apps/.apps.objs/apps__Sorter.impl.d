lib/apps/sorter.ml: Array Bytes Clouds Dsm Int Int64 List Printf Ra Sim
