lib/apps/lisp_env.mli: Clouds Ra
