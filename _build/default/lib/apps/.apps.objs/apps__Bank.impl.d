lib/apps/bank.ml: Clouds Sim
