lib/apps/port.mli: Clouds Ra
