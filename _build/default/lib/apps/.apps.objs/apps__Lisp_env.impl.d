lib/apps/lisp_env.ml: Buffer Clouds List Printf Ra Sim String
