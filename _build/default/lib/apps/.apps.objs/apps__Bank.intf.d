lib/apps/bank.mli: Clouds Net Ra
