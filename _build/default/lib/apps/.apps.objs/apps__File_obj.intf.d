lib/apps/file_obj.mli: Clouds Ra
