lib/apps/kv_store.mli: Clouds Ra
