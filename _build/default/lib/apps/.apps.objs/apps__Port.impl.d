lib/apps/port.ml: Array Clouds Sim
