lib/apps/apps.ml: Bank File_obj Kv_store Lisp_env Port Sensor Sorter
