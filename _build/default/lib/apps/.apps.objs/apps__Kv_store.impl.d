lib/apps/kv_store.ml: Clouds Hashtbl List Sim String
