lib/apps/sensor.mli: Clouds Ra Sim
