module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory

exception Lisp_error of string

(* ------------------------------------------------------------------ *)
(* Values.  Everything, including closures, is representable as text,
   which is what lets the whole global environment live in persistent
   object memory. *)

type sexp =
  | Int of int
  | Sym of string
  | Str of string
  | Nil
  | Pair of sexp * sexp
  | Closure of string list * sexp list * (string * sexp) list

let rec list_of = function
  | Nil -> []
  | Pair (a, rest) -> a :: list_of rest
  | _ -> raise (Lisp_error "improper list")

let rec of_list = function [] -> Nil | x :: rest -> Pair (x, of_list rest)

(* ------------------------------------------------------------------ *)
(* Printer *)

let rec print = function
  | Int n -> string_of_int n
  | Sym s -> s
  | Str s -> Printf.sprintf "%S" s
  | Nil -> "()"
  | Pair _ as p ->
      let rec items = function
        | Nil -> []
        | Pair (a, rest) -> print a :: items rest
        | other -> [ "." ; print other ]
      in
      "(" ^ String.concat " " (items p) ^ ")"
  | Closure (params, body, captured) ->
      print
        (of_list
           (Sym "#closure"
           :: of_list (List.map (fun p -> Sym p) params)
           :: of_list body
           :: [ of_list (List.map (fun (n, v) -> of_list [ Sym n; v ]) captured) ]))

(* ------------------------------------------------------------------ *)
(* Parser *)

let tokenize src =
  let tokens = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' | ')' | '\'' ->
        tokens := String.make 1 src.[!i] :: !tokens;
        incr i
    | '"' ->
        let j = ref (!i + 1) in
        let buf = Buffer.create 16 in
        while !j < n && src.[!j] <> '"' do
          Buffer.add_char buf src.[!j];
          incr j
        done;
        if !j >= n then raise (Lisp_error "unterminated string");
        tokens := ("\"" ^ Buffer.contents buf) :: !tokens;
        i := !j + 1
    | ';' ->
        (* comment to end of line *)
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | _ ->
        let j = ref !i in
        while
          !j < n
          && not
               (match src.[!j] with
               | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '\'' | '"' -> true
               | _ -> false)
        do
          incr j
        done;
        tokens := String.sub src !i (!j - !i) :: !tokens;
        i := !j);
  done;
  List.rev !tokens

let parse src =
  let rec one = function
    | [] -> raise (Lisp_error "unexpected end of input")
    | "(" :: rest -> many rest
    | ")" :: _ -> raise (Lisp_error "unexpected )")
    | "'" :: rest ->
        let v, rest = one rest in
        (of_list [ Sym "quote"; v ], rest)
    | tok :: rest ->
        let v =
          if String.length tok > 0 && tok.[0] = '"' then
            Str (String.sub tok 1 (String.length tok - 1))
          else
            match int_of_string_opt tok with
            | Some n -> Int n
            | None -> Sym tok
        in
        (v, rest)
  and many = function
    | ")" :: rest -> (Nil, rest)
    | "." :: rest -> (
        let v, rest = one rest in
        match rest with
        | ")" :: rest -> (v, rest)
        | _ -> raise (Lisp_error "malformed dotted pair"))
    | [] -> raise (Lisp_error "missing )")
    | tokens ->
        let v, rest = one tokens in
        let tail, rest = many rest in
        (Pair (v, tail), rest)
  in
  let rec all tokens =
    match tokens with
    | [] -> []
    | _ ->
        let v, rest = one tokens in
        v :: all rest
  in
  all (tokenize src)

(* The persisted global environment is itself parsed with [parse];
   closures round-trip through their #closure form. *)
let rec revive = function
  | Pair (Sym "#closure", Pair (params, Pair (body, Pair (captured, Nil)))) ->
      Closure
        ( List.map (function Sym s -> s | _ -> raise (Lisp_error "bad image")) (list_of params),
          List.map revive (list_of body),
          List.map
            (function
              | Pair (Sym n, Pair (v, Nil)) -> (n, revive v)
              | _ -> raise (Lisp_error "bad image"))
            (list_of captured) )
  | Pair (a, b) -> Pair (revive a, revive b)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Evaluator *)

type interp = {
  mutable globals : (string * sexp) list;
  mutable dirty : bool;
  mutable steps : int;
  ctx : Clouds.Ctx.t;
}

let truthy = function Nil | Int 0 -> false | _ -> true

let int2 name f = function
  | [ Int a; Int b ] -> f a b
  | _ -> raise (Lisp_error (name ^ ": expects two integers"))

let rec lookup it frames name =
  match frames with
  | [] -> (
      match List.assoc_opt name it.globals with
      | Some v -> v
      | None -> raise (Lisp_error ("unbound symbol: " ^ name)))
  | frame :: rest -> (
      match List.assoc_opt name frame with
      | Some v -> v
      | None -> lookup it rest name)

let rec eval it frames expr =
  it.steps <- it.steps + 1;
  if it.steps > 200_000 then raise (Lisp_error "evaluation too long");
  match expr with
  | Int _ | Str _ | Nil | Closure _ -> expr
  | Sym name -> lookup it frames name
  | Pair (Sym "quote", Pair (v, Nil)) -> v
  | Pair (Sym "if", Pair (c, Pair (t, rest))) ->
      if truthy (eval it frames c) then eval it frames t
      else (match rest with Pair (e, Nil) -> eval it frames e | _ -> Nil)
  | Pair (Sym "define", Pair (Sym name, Pair (v, Nil))) ->
      let value = eval it frames v in
      it.globals <- (name, value) :: List.remove_assoc name it.globals;
      it.dirty <- true;
      Sym name
  | Pair (Sym "define", Pair (Pair (Sym name, params), body)) ->
      (* (define (f x y) body...) *)
      let params =
        List.map
          (function Sym s -> s | _ -> raise (Lisp_error "bad parameter"))
          (list_of params)
      in
      let value = Closure (params, list_of body, []) in
      it.globals <- (name, value) :: List.remove_assoc name it.globals;
      it.dirty <- true;
      Sym name
  | Pair (Sym "set!", Pair (Sym name, Pair (v, Nil))) ->
      if List.mem_assoc name it.globals then begin
        let value = eval it frames v in
        it.globals <- (name, value) :: List.remove_assoc name it.globals;
        it.dirty <- true;
        value
      end
      else raise (Lisp_error ("set!: unbound " ^ name))
  | Pair (Sym "lambda", Pair (params, body)) ->
      let params =
        List.map
          (function Sym s -> s | _ -> raise (Lisp_error "bad parameter"))
          (list_of params)
      in
      (* close over the current local frames by value *)
      Closure (params, list_of body, List.concat frames)
  | Pair (Sym "let", Pair (binds, body)) ->
      let frame =
        List.map
          (function
            | Pair (Sym n, Pair (v, Nil)) -> (n, eval it frames v)
            | _ -> raise (Lisp_error "bad let binding"))
          (list_of binds)
      in
      eval_body it (frame :: frames) (list_of body)
  | Pair (Sym "begin", body) -> eval_body it frames (list_of body)
  | Pair (Sym "and", args) ->
      let rec go = function
        | [] -> Int 1
        | [ last ] -> eval it frames last
        | a :: rest -> if truthy (eval it frames a) then go rest else Nil
      in
      go (list_of args)
  | Pair (Sym "or", args) ->
      let rec go = function
        | [] -> Nil
        | a :: rest ->
            let v = eval it frames a in
            if truthy v then v else go rest
      in
      go (list_of args)
  | Pair (f, args) ->
      let fn = eval it frames f in
      let args = List.map (eval it frames) (list_of args) in
      apply it fn args

and eval_body it frames = function
  | [] -> Nil
  | [ last ] -> eval it frames last
  | e :: rest ->
      ignore (eval it frames e);
      eval_body it frames rest

and apply it fn args =
  match fn with
  | Closure (params, body, captured) ->
      if List.length params <> List.length args then
        raise (Lisp_error "arity mismatch");
      let frame = List.combine params args in
      eval_body it [ frame; captured ] body
  | Sym name -> builtin it name args
  | _ -> raise (Lisp_error ("not a function: " ^ print fn))

and builtin it name args =
  let bool b = if b then Int 1 else Nil in
  match (name, args) with
  | "+", _ ->
      Int (List.fold_left (fun acc -> function Int n -> acc + n | _ -> raise (Lisp_error "+")) 0 args)
  | "*", _ ->
      Int (List.fold_left (fun acc -> function Int n -> acc * n | _ -> raise (Lisp_error "*")) 1 args)
  | "-", [ Int a ] -> Int (-a)
  | "-", _ -> Int (int2 "-" (fun a b -> a - b) args)
  | "/", _ ->
      Int (int2 "/" (fun a b -> if b = 0 then raise (Lisp_error "division by zero") else a / b) args)
  | "=", _ -> bool (int2 "=" (fun a b -> if a = b then 1 else 0) args = 1)
  | "<", _ -> bool (int2 "<" (fun a b -> if a < b then 1 else 0) args = 1)
  | ">", _ -> bool (int2 ">" (fun a b -> if a > b then 1 else 0) args = 1)
  | "<=", _ -> bool (int2 "<=" (fun a b -> if a <= b then 1 else 0) args = 1)
  | ">=", _ -> bool (int2 ">=" (fun a b -> if a >= b then 1 else 0) args = 1)
  | "cons", [ a; b ] -> Pair (a, b)
  | "car", [ Pair (a, _) ] -> a
  | "cdr", [ Pair (_, b) ] -> b
  | "list", _ -> of_list args
  | "null?", [ v ] -> bool (v = Nil)
  | "eq?", [ a; b ] -> bool (a = b)
  | "not", [ v ] -> bool (not (truthy v))
  | "length", [ v ] -> Int (List.length (list_of v))
  | "append", [ a; b ] -> of_list (list_of a @ list_of b)
  | "remote", [ Str target; Str expr ] -> (
      (* inter-environment operation: evaluate inside another Lisp
         environment object, anywhere in the cluster *)
      match Ra.Sysname.of_string target with
      | None -> raise (Lisp_error ("remote: bad sysname " ^ target))
      | Some obj -> (
          match
            it.ctx.Clouds.Ctx.invoke ~obj ~entry:"eval" (V.Str expr)
          with
          | V.Str result -> (
              match parse result with
              | [ v ] -> revive v
              | _ -> Str result)
          | _ -> raise (Lisp_error "remote: bad reply")))
  | _ ->
      raise (Lisp_error ("unknown function: " ^ name))

(* ------------------------------------------------------------------ *)
(* The persistent image: the global alist serialized at data[0]. *)

let builtin_names =
  [
    "+"; "-"; "*"; "/"; "="; "<"; ">"; "<="; ">="; "cons"; "car"; "cdr";
    "list"; "null?"; "eq?"; "not"; "length"; "append"; "remote";
  ]

let load_globals ctx =
  let image = Mem.get_string ctx.Clouds.Ctx.mem 0 in
  if String.equal image "" then
    List.map (fun n -> (n, Sym n)) builtin_names
  else
    match parse image with
    | [ alist ] ->
        List.map
          (function
            | Pair (Sym n, Pair (v, Nil)) -> (n, revive v)
            | _ -> raise (Lisp_error "corrupt image"))
          (list_of alist)
    | _ -> raise (Lisp_error "corrupt image")

let save_globals ctx globals =
  let image =
    print
      (of_list
         (List.map (fun (n, v) -> of_list [ Sym n; v ]) globals))
  in
  if Mem.string_footprint image > Mem.region_size ctx.Clouds.Ctx.mem Mem.Data
  then raise (Lisp_error "environment too large to persist");
  Mem.set_string ctx.Clouds.Ctx.mem 0 image

let eval_entry ctx arg =
  let src = V.to_string arg in
  let it = { globals = load_globals ctx; dirty = false; steps = 0; ctx } in
  let result =
    match parse src with
    | [] -> Nil
    | exprs -> eval_body it [] exprs
  in
  ctx.Clouds.Ctx.compute (Sim.Time.us (20 * min it.steps 10_000));
  if it.dirty then save_globals ctx it.globals;
  V.Str (print result)

let cls =
  Clouds.Obj_class.define ~name:"lisp-env" ~data_pages:8 ~heap_pages:1
    [
      Clouds.Obj_class.entry "eval" eval_entry;
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "eval_durable"
        eval_entry;
      Clouds.Obj_class.entry "bindings" (fun ctx _ ->
          let it = { globals = load_globals ctx; dirty = false; steps = 0; ctx } in
          V.List
            (List.filter_map
               (fun (n, _) ->
                 if List.mem n builtin_names then None else Some (V.Str n))
               it.globals));
    ]

let register om =
  let cl = Clouds.Object_manager.cluster om in
  if Cl.find_class cl "lisp-env" = None then Cl.register_class cl cls

let create om =
  register om;
  Clouds.Object_manager.create_object om ~class_name:"lisp-env" V.Unit

let invoke0 om obj entry arg =
  let cl = Clouds.Object_manager.cluster om in
  Clouds.Object_manager.invoke om ~node:(Cl.pick_compute cl) ~thread_id:0
    ~origin:None ~txn:None ~obj ~entry arg

let eval om obj src = V.to_string (invoke0 om obj "eval" (V.Str src))

let eval_durable om obj src =
  V.to_string (invoke0 om obj "eval_durable" (V.Str src))

let bindings om obj =
  match invoke0 om obj "bindings" V.Unit with
  | V.List l -> List.map V.to_string l
  | _ -> failwith "Lisp_env.bindings: bad reply"
