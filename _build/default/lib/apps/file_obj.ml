module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory

let header = 64
let off_size = 0

let entries capacity =
  [
    Clouds.Obj_class.entry "size" (fun ctx _ ->
        V.Int (Mem.get_int ctx.Clouds.Ctx.mem off_size));
    Clouds.Obj_class.entry "read" (fun ctx arg ->
        let off_v, len_v = V.to_pair arg in
        let off = V.to_int off_v and len = V.to_int len_v in
        if off < 0 || len < 0 then invalid_arg "file read";
        let size = Mem.get_int ctx.Clouds.Ctx.mem off_size in
        let len = max 0 (min len (size - off)) in
        ctx.Clouds.Ctx.compute (Sim.Time.us 50);
        if len = 0 then V.Str ""
        else
          V.Str
            (Bytes.to_string
               (Mem.read ctx.Clouds.Ctx.mem (header + off) ~len)));
    Clouds.Obj_class.entry "write" (fun ctx arg ->
        let off_v, data_v = V.to_pair arg in
        let off = V.to_int off_v in
        let data = V.to_string data_v in
        if off < 0 || off + String.length data > capacity then
          invalid_arg "file write: beyond capacity";
        ctx.Clouds.Ctx.compute (Sim.Time.us 50);
        Mem.write ctx.Clouds.Ctx.mem (header + off) (Bytes.of_string data);
        let size = Mem.get_int ctx.Clouds.Ctx.mem off_size in
        if off + String.length data > size then
          Mem.set_int ctx.Clouds.Ctx.mem off_size (off + String.length data);
        V.Unit);
    Clouds.Obj_class.entry "append" (fun ctx arg ->
        let data = V.to_string arg in
        let size = Mem.get_int ctx.Clouds.Ctx.mem off_size in
        if size + String.length data > capacity then
          invalid_arg "file append: beyond capacity";
        ctx.Clouds.Ctx.compute (Sim.Time.us 50);
        Mem.write ctx.Clouds.Ctx.mem (header + size) (Bytes.of_string data);
        Mem.set_int ctx.Clouds.Ctx.mem off_size (size + String.length data);
        V.Unit);
    Clouds.Obj_class.entry "truncate" (fun ctx arg ->
        let n = V.to_int arg in
        if n < 0 || n > Mem.get_int ctx.Clouds.Ctx.mem off_size then
          invalid_arg "file truncate";
        Mem.set_int ctx.Clouds.Ctx.mem off_size n;
        V.Unit);
  ]

let class_name_for capacity = Printf.sprintf "file-%d" capacity

let register om ~capacity =
  let cl = Clouds.Object_manager.cluster om in
  let name = class_name_for capacity in
  if Cl.find_class cl name = None then
    Cl.register_class cl
      (Clouds.Obj_class.define ~name
         ~data_pages:(Ra.Page.count_for (header + capacity))
         ~heap_pages:1 (entries capacity));
  name

let create om ~capacity =
  let name = register om ~capacity in
  Clouds.Object_manager.create_object om ~class_name:name V.Unit

let invoke0 om obj entry arg =
  let cl = Clouds.Object_manager.cluster om in
  Clouds.Object_manager.invoke om ~node:(Cl.pick_compute cl) ~thread_id:0
    ~origin:None ~txn:None ~obj ~entry arg

let size om obj = V.to_int (invoke0 om obj "size" V.Unit)

let read om obj ~off ~len =
  V.to_string (invoke0 om obj "read" (V.Pair (V.Int off, V.Int len)))

let write om obj ~off data =
  ignore (invoke0 om obj "write" (V.Pair (V.Int off, V.Str data)))

let append om obj data = ignore (invoke0 om obj "append" (V.Str data))
let truncate om obj n = ignore (invoke0 om obj "truncate" (V.Int n))
