module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory

let capacity = 64

(* data layout *)
let off_count = 0
let off_alarm = 8 (* string, up to ~80 bytes *)
let off_rng = 96
let off_stop = 104
let ring_base = 128

let sample_at ctx i =
  Mem.get_int ctx.Clouds.Ctx.mem (ring_base + (8 * (i mod capacity)))

let record ctx reading =
  let count = Mem.get_int ctx.Clouds.Ctx.mem off_count in
  Mem.set_int ctx.Clouds.Ctx.mem (ring_base + (8 * (count mod capacity))) reading;
  Mem.set_int ctx.Clouds.Ctx.mem off_count (count + 1)

(* The "device": a deterministic pseudo-random walk seeded in the
   object, standing in for real sensor hardware. *)
let next_reading ctx =
  let state = Mem.get_int ctx.Clouds.Ctx.mem off_rng in
  let state = (state * 2862933555777941757) + 3037000493 in
  Mem.set_int ctx.Clouds.Ctx.mem off_rng state;
  abs state mod 101

let daemon ~interval ~threshold ctx =
  let rec loop () =
    Sim.sleep interval;
    if Mem.get_int ctx.Clouds.Ctx.mem off_stop = 0 then begin
      ctx.Clouds.Ctx.compute (Sim.Time.us 100);
      let reading = next_reading ctx in
      record ctx reading;
      (if reading > threshold then begin
         let alarm = Mem.get_string ctx.Clouds.Ctx.mem off_alarm in
         match Ra.Sysname.of_string alarm with
         | Some obj ->
             ignore
               (ctx.Clouds.Ctx.invoke ~obj ~entry:"notify"
                  (V.Pair (V.of_sysname ctx.Clouds.Ctx.self, V.Int reading)))
         | None -> ()
       end);
      loop ()
    end
  in
  loop ()

let cls ~interval ~threshold =
  Clouds.Obj_class.define ~name:"sensor"
    ~constructor:(fun ctx arg ->
      Mem.set_int ctx.Clouds.Ctx.mem off_rng 987654321;
      match arg with
      | V.Str alarm -> Mem.set_string ctx.Clouds.Ctx.mem off_alarm alarm
      | _ -> Mem.set_string ctx.Clouds.Ctx.mem off_alarm "")
    ~daemons:[ ("sampler", daemon ~interval ~threshold) ]
    [
      Clouds.Obj_class.entry "latest" (fun ctx _ ->
          let count = Mem.get_int ctx.Clouds.Ctx.mem off_count in
          if count = 0 then V.Unit else V.Int (sample_at ctx (count - 1)));
      Clouds.Obj_class.entry "sample_count" (fun ctx _ ->
          V.Int (Mem.get_int ctx.Clouds.Ctx.mem off_count));
      Clouds.Obj_class.entry "history" (fun ctx arg ->
          let n = V.to_int arg in
          let count = Mem.get_int ctx.Clouds.Ctx.mem off_count in
          let n = min n (min count capacity) in
          let samples =
            List.init n (fun k -> V.Int (sample_at ctx (count - n + k)))
          in
          V.List samples);
      Clouds.Obj_class.entry "stop" (fun ctx _ ->
          Mem.set_int ctx.Clouds.Ctx.mem off_stop 1;
          V.Unit);
    ]

let register om ?(interval = Sim.Time.ms 50) ?(threshold = 90) () =
  let cl = Clouds.Object_manager.cluster om in
  if Cl.find_class cl "sensor" = None then
    Cl.register_class cl (cls ~interval ~threshold)

let create om ?alarm () =
  register om ();
  let arg =
    match alarm with
    | Some a -> V.Str (Ra.Sysname.to_string a)
    | None -> V.Str ""
  in
  Clouds.Object_manager.create_object om ~class_name:"sensor" arg

let invoke0 om obj entry arg =
  let cl = Clouds.Object_manager.cluster om in
  Clouds.Object_manager.invoke om ~node:(Cl.pick_compute cl) ~thread_id:0
    ~origin:None ~txn:None ~obj ~entry arg

let latest om obj =
  match invoke0 om obj "latest" V.Unit with
  | V.Int v -> Some v
  | V.Unit -> None
  | _ -> failwith "Sensor.latest: bad reply"

let sample_count om obj = V.to_int (invoke0 om obj "sample_count" V.Unit)

let history om obj ~n =
  match invoke0 om obj "history" (V.Int n) with
  | V.List l -> List.map V.to_int l
  | _ -> failwith "Sensor.history: bad reply"
