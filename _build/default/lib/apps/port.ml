module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory
module Ph = Clouds.Pheap

let off_head = 0
let off_tail = 8
let off_count = 16

(* heap node: [next:8][value:4+n] *)

let enqueue ctx value =
  let size = 8 + Mem.value_footprint value in
  let n = Ph.alloc (ctx.Clouds.Ctx.pheap ()) size in
  Mem.set_int ctx.Clouds.Ctx.mem ~region:Mem.Heap n 0;
  Mem.set_value ctx.Clouds.Ctx.mem ~region:Mem.Heap (n + 8) value;
  let tail = Mem.get_int ctx.Clouds.Ctx.mem off_tail in
  if tail = 0 then Mem.set_int ctx.Clouds.Ctx.mem off_head n
  else Mem.set_int ctx.Clouds.Ctx.mem ~region:Mem.Heap tail n;
  Mem.set_int ctx.Clouds.Ctx.mem off_tail n;
  Mem.set_int ctx.Clouds.Ctx.mem off_count
    (Mem.get_int ctx.Clouds.Ctx.mem off_count + 1)

let dequeue ctx =
  let head = Mem.get_int ctx.Clouds.Ctx.mem off_head in
  if head = 0 then None
  else begin
    let value = Mem.get_value ctx.Clouds.Ctx.mem ~region:Mem.Heap (head + 8) in
    let next = Mem.get_int ctx.Clouds.Ctx.mem ~region:Mem.Heap head in
    Mem.set_int ctx.Clouds.Ctx.mem off_head next;
    if next = 0 then Mem.set_int ctx.Clouds.Ctx.mem off_tail 0;
    Ph.free (ctx.Clouds.Ctx.pheap ()) head;
    Mem.set_int ctx.Clouds.Ctx.mem off_count
      (Mem.get_int ctx.Clouds.Ctx.mem off_count - 1);
    Some value
  end

let cls =
  Clouds.Obj_class.define ~name:"port" ~heap_pages:8
    [
      Clouds.Obj_class.entry "send" (fun ctx arg ->
          ctx.Clouds.Ctx.compute (Sim.Time.us 60);
          Sim.Mutex.with_lock (ctx.Clouds.Ctx.obj_mutex "q") (fun () ->
              enqueue ctx arg);
          Sim.Semaphore.release (ctx.Clouds.Ctx.semaphore "msgs" 0);
          V.Unit);
      Clouds.Obj_class.entry "receive" (fun ctx _ ->
          Sim.Semaphore.acquire (ctx.Clouds.Ctx.semaphore "msgs" 0);
          ctx.Clouds.Ctx.compute (Sim.Time.us 60);
          Sim.Mutex.with_lock (ctx.Clouds.Ctx.obj_mutex "q") (fun () ->
              match dequeue ctx with
              | Some v -> v
              | None -> failwith "port: semaphore/queue mismatch"));
      Clouds.Obj_class.entry "try_receive" (fun ctx _ ->
          if Sim.Semaphore.try_acquire (ctx.Clouds.Ctx.semaphore "msgs" 0) then
            Sim.Mutex.with_lock (ctx.Clouds.Ctx.obj_mutex "q") (fun () ->
                match dequeue ctx with
                | Some v -> V.Pair (V.Bool true, v)
                | None -> failwith "port: semaphore/queue mismatch")
          else V.Pair (V.Bool false, V.Unit));
      Clouds.Obj_class.entry "pending" (fun ctx _ ->
          V.Int (Mem.get_int ctx.Clouds.Ctx.mem off_count));
    ]

let register om =
  let cl = Clouds.Object_manager.cluster om in
  if Cl.find_class cl "port" = None then Cl.register_class cl cls

let create om =
  register om;
  Clouds.Object_manager.create_object om ~class_name:"port" V.Unit

let invoke_on om node obj entry arg =
  Clouds.Object_manager.invoke om ~node ~thread_id:0 ~origin:None ~txn:None
    ~obj ~entry arg

let default_node om =
  (Clouds.Object_manager.cluster om).Cl.compute_nodes.(0)

let send om obj value = ignore (invoke_on om (default_node om) obj "send" value)

let receive om ?on obj =
  let cl = Clouds.Object_manager.cluster om in
  let node =
    match on with
    | Some addr -> (
        match Cl.node_by_id cl addr with
        | Some n -> n
        | None -> invalid_arg "Port.receive: unknown node")
    | None -> default_node om
  in
  invoke_on om node obj "receive" V.Unit

let try_receive om obj =
  match invoke_on om (default_node om) obj "try_receive" V.Unit with
  | V.Pair (V.Bool true, v) -> Some v
  | V.Pair (V.Bool false, _) -> None
  | _ -> failwith "Port.try_receive: bad reply"

let pending om obj =
  V.to_int (invoke_on om (default_node om) obj "pending" V.Unit)
