examples/fault_tolerant_bank.ml: Array Atomicity Clouds Cluster Ctx Memory Obj_class Object_manager Option Pet Printf Ra Ratp Sim String Value
