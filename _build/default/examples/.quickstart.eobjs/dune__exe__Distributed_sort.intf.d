examples/distributed_sort.mli:
