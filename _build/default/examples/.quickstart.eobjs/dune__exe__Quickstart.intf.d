examples/quickstart.mli:
