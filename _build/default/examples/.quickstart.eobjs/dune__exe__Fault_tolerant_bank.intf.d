examples/fault_tolerant_bank.mli:
