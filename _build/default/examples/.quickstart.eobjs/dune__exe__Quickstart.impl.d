examples/quickstart.ml: Array Clouds Cluster Ctx Memory Name_server Obj_class Object_manager Printf Ra Sim Terminal Thread Value
