examples/sensor_network.ml: Apps Array Clouds Cluster Ctx List Memory Name_server Obj_class Object_manager Option Printf Sim String Value
