examples/distributed_sort.ml: Apps Clouds List Printf Sim
