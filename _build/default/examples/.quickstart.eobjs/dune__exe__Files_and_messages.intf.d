examples/files_and_messages.mli:
