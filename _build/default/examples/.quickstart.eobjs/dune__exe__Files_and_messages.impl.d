examples/files_and_messages.ml: Apps Array Clouds Cluster List Printf Ra Sim String Value
