(* "No Files? No Messages?" — the paper's box, made runnable.

   Clouds has neither files nor messages at the operating-system
   level; both are simulated by persistent objects when wanted.  This
   example builds a small "log processing" pipeline out of them:

   - a file object holds an input log (byte-sequential data with read
     and write entry points — it looks exactly like a file);
   - a port object carries work items between a producer thread and a
     consumer thread (send/receive over a buffer object — it looks
     exactly like a message queue);
   - a kv-store object accumulates word counts in structured
     persistent memory (no serialization, no file format: the hash
     directory and chains live directly in the object's data and
     persistent heap).

   Run with:  dune exec examples/files_and_messages.exe *)

open Clouds

let log_lines =
  [
    "alpha beta gamma";
    "beta gamma";
    "gamma gamma alpha";
    "delta";
    "alpha beta gamma delta";
  ]

let () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:1 ~workstations:1 () in
      let om = sys.om in

      (* --- a "file" --- *)
      let file = Apps.File_obj.create om ~capacity:65536 in
      List.iter (fun line -> Apps.File_obj.append om file (line ^ "\n")) log_lines;
      Printf.printf "wrote %d bytes into a file simulated by an object\n"
        (Apps.File_obj.size om file);

      (* --- a "message port" and a worker --- *)
      let port = Apps.Port.create om in
      let counts = Apps.Kv_store.create om in
      let node = sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id in

      let consumer =
        Sim.spawn "consumer" (fun () ->
            let rec loop () =
              match Apps.Port.receive om ~on:node port with
              | Value.Str "EOF" -> ()
              | Value.Str word ->
                  let current =
                    match Apps.Kv_store.get om counts word with
                    | Some (Value.Int n) -> n
                    | Some _ | None -> 0
                  in
                  Apps.Kv_store.put om counts word (Value.Int (current + 1));
                  loop ()
              | _ -> loop ()
            in
            loop ())
      in
      ignore consumer;

      (* the producer reads the "file" and sends words through the
         "port" *)
      let contents =
        Apps.File_obj.read om file ~off:0 ~len:(Apps.File_obj.size om file)
      in
      String.split_on_char '\n' contents
      |> List.concat_map (String.split_on_char ' ')
      |> List.filter (fun w -> w <> "")
      |> List.iter (fun w -> Apps.Port.send om port (Value.Str w));
      Apps.Port.send om port (Value.Str "EOF");

      (* give the consumer time to drain the port *)
      Sim.sleep (Sim.Time.sec 2);

      print_endline "word counts accumulated in persistent object memory:";
      Apps.Kv_store.keys om counts
      |> List.sort String.compare
      |> List.iter (fun key ->
             match Apps.Kv_store.get om counts key with
             | Some (Value.Int n) -> Printf.printf "  %-8s %d\n" key n
             | Some _ | None -> ());
      assert (Apps.Kv_store.get om counts "gamma" = Some (Value.Int 5));
      assert (Apps.Kv_store.get om counts "alpha" = Some (Value.Int 3));
      print_endline
        "\nno file system, no message kernel: just objects, invocations and persistent memory")
