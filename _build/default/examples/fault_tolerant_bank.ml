(* A fault-tolerant bank using PET (§5.2.2).

   The ledger is replicated on three data servers.  A resilient
   "interest posting" computation runs as two parallel execution
   threads on different compute servers.  Mid-run we crash both a
   compute server and one of the data servers — the computation still
   completes, commits to a quorum, and the recovered server is brought
   back in sync.

   Run with:  dune exec examples/fault_tolerant_bank.exe *)

open Clouds

let ledger =
  Obj_class.define ~name:"ledger"
    ~constructor:(fun ctx arg -> Memory.set_int ctx.Ctx.mem 0 (Value.to_int arg))
    [
      Obj_class.entry ~label:Obj_class.Gcp "post_interest" (fun ctx arg ->
          let balance = Memory.get_int ctx.Ctx.mem 0 in
          (* a deliberately slow computation so the crashes land mid-run *)
          ctx.Ctx.compute (Sim.Time.ms 300);
          let rate = Value.to_int arg in
          let interest = balance * rate / 100 in
          Memory.set_int ctx.Ctx.mem 0 (balance + interest);
          Value.Int (balance + interest));
      Obj_class.entry ~label:Obj_class.S "balance" (fun ctx _ ->
          Value.Int (Memory.get_int ctx.Ctx.mem 0));
    ]

let () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng
          ~ratp_config:
            { Ratp.Endpoint.default_config with
              retry_initial = Sim.Time.ms 20;
              max_attempts = 3 }
          ~compute:3 ~data:3 ~workstations:1 ()
      in
      let mgr =
        Atomicity.Manager.install sys.om ~deadlock_timeout:(Sim.Time.ms 500) ()
      in
      Cluster.register_class sys.cluster ledger;

      (* replicate the ledger on all three data servers *)
      let group =
        Pet.Replica.create sys.om ~class_name:"ledger" ~degree:3
          (Value.Int 10_000)
      in
      Printf.printf "ledger (initial balance 10000) replicated on data servers: %s\n"
        (String.concat ", "
           (Array.to_list (Array.map string_of_int group.Pet.Replica.homes)));

      (* inject failures: a compute server dies at 100ms, a data
         server at 150ms *)
      let compute_victim = sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id in
      let data_victim = group.Pet.Replica.homes.(2) in
      Pet.Failure.crash_at sys.cluster compute_victim (Sim.Time.ms 100);
      Pet.Failure.crash_at sys.cluster data_victim (Sim.Time.ms 150);
      Printf.printf "scheduled crashes: compute server %d at 100ms, data server %d at 150ms\n\n"
        compute_victim data_victim;

      (* the resilient computation: 2 PETs, quorum of 2 *)
      let outcome =
        Pet.Runner.run mgr ~group ~entry:"post_interest" ~parallel:2 ~quorum:2
          (Value.Int 5)
      in
      (match outcome.Pet.Runner.value with
      | Some (Value.Int v) ->
          Printf.printf "interest posted: new balance %d (expected 10500)\n" v
      | Some _ | None -> failwith "PET computation failed");
      Printf.printf
        "winner: PET #%d | completed: %d | killed: %d | replicas updated: %d/3 | quorum: %b\n"
        (Option.value ~default:(-1) outcome.Pet.Runner.winner)
        outcome.Pet.Runner.completed outcome.Pet.Runner.killed
        outcome.Pet.Runner.replicas_updated outcome.Pet.Runner.quorum_ok;
      Printf.printf "resources: %.0f thread-ms for a single logical computation\n\n"
        outcome.Pet.Runner.thread_ms;
      assert outcome.Pet.Runner.quorum_ok;

      (* bring the dead data server back and resync its replica *)
      Pet.Failure.restart_at sys.cluster data_victim 0;
      Sim.sleep (Sim.Time.ms 100);
      let stale = 2 in
      let synced =
        Pet.Replica.copy_state sys.om group ~from_index:0 ~to_index:stale
      in
      Printf.printf "data server %d restarted; replica resynced: %b\n"
        data_victim synced;
      let check =
        Object_manager.invoke sys.om
          ~node:sys.cluster.Cluster.compute_nodes.(1)
          ~thread_id:0 ~origin:None ~txn:None
          ~obj:(Pet.Replica.pick group stale) ~entry:"balance" Value.Unit
      in
      Printf.printf "recovered replica balance: %d\n" (Value.to_int check);
      assert (Value.to_int check = 10_500))
