(* Active objects: a small sensor network (the paper's "What can
   objects do?" box).

   Each sensor is an object that encapsulates a sensing device; an
   internal daemon process samples the device periodically and, on
   threshold crossings, notifies a monitoring object — the
   event-notification pattern the paper describes.  Threads read the
   gathered history through ordinary invocations without knowing
   where the sensors run.

   Run with:  dune exec examples/sensor_network.exe *)

open Clouds

let monitor_cls =
  Obj_class.define ~name:"monitor"
    [
      Obj_class.entry "notify" (fun ctx arg ->
          let sensor_v, reading_v = Value.to_pair arg in
          let n = Memory.get_int ctx.Ctx.mem 0 in
          Memory.set_int ctx.Ctx.mem 0 (n + 1);
          ctx.Ctx.print
            (Printf.sprintf "ALERT %s reading=%d"
               (Value.to_string sensor_v)
               (Value.to_int reading_v));
          Value.Unit);
      Obj_class.entry "alerts" (fun ctx _ -> Value.Int (Memory.get_int ctx.Ctx.mem 0));
    ]

let () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:3 ~data:1 ~workstations:1 () in
      let om = sys.om in
      Apps.Sensor.register om ~interval:(Sim.Time.ms 25) ~threshold:85 ();
      Cluster.register_class sys.cluster monitor_cls;

      let monitor = Object_manager.create_object om ~class_name:"monitor" Value.Unit in
      let sensors =
        List.init 3 (fun _i -> Apps.Sensor.create om ~alarm:monitor ())
      in
      List.iteri
        (fun i s -> Name_server.bind om ~name:(Printf.sprintf "sensor-%d" i) s)
        sensors;
      print_endline "three active sensors sampling every 25ms...";

      Sim.sleep (Sim.Time.sec 1);

      List.iteri
        (fun i s ->
          let count = Apps.Sensor.sample_count om s in
          let last = Option.value ~default:(-1) (Apps.Sensor.latest om s) in
          let hist = Apps.Sensor.history om s ~n:5 in
          Printf.printf "sensor-%d: %d samples, latest=%d, recent=[%s]\n" i
            count last
            (String.concat "; " (List.map string_of_int hist));
          assert (count >= 20))
        sensors;

      let alerts =
        Value.to_int
          (Object_manager.invoke om
             ~node:sys.cluster.Cluster.compute_nodes.(0)
             ~thread_id:0 ~origin:None ~txn:None ~obj:monitor ~entry:"alerts"
             Value.Unit)
      in
      Printf.printf "monitor received %d threshold alerts\n" alerts;
      assert (alerts > 0);

      (* stop the daemons so the simulation drains *)
      List.iter
        (fun s ->
          ignore
            (Object_manager.invoke om
               ~node:sys.cluster.Cluster.compute_nodes.(0)
               ~thread_id:0 ~origin:None ~txn:None ~obj:s ~entry:"stop"
               Value.Unit))
        sensors;
      print_endline "sensors stopped")
