(* Quickstart: the paper's §2.4 programming example, end to end.

   We boot a small Clouds cluster (one data server, two compute
   servers, one user workstation), write the "rectangle" class, create
   an instance, register it with the name server as "Rect01", and then
   do exactly what the paper's code fragment does:

     rect.bind("Rect01");
     rect.size(5, 10);
     printf("%d\n", rect.area());   // prints 50

   Run with:  dune exec examples/quickstart.exe *)

open Clouds

(* A Clouds class is a compiled program module: persistent data plus
   entry points.  The rectangle keeps x at byte 0 and y at byte 8 of
   its persistent data segment. *)
let rectangle =
  Obj_class.define ~name:"rectangle"
    [
      Obj_class.entry "size" (fun ctx arg ->
          let x, y = Value.to_pair arg in
          Memory.set_int ctx.Ctx.mem 0 (Value.to_int x);
          Memory.set_int ctx.Ctx.mem 8 (Value.to_int y);
          Value.Unit);
      Obj_class.entry "area" (fun ctx _ ->
          Value.Int
            (Memory.get_int ctx.Ctx.mem 0 * Memory.get_int ctx.Ctx.mem 8));
    ]

let () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:1 ~workstations:1 () in

      (* "compile" the class onto a data server *)
      Cluster.register_class sys.cluster rectangle;

      (* instantiate it and give it a user-level name *)
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      Name_server.bind sys.om ~name:"Rect01" rect;
      Printf.printf "created %s, bound as \"Rect01\"\n"
        (Ra.Sysname.to_string rect);

      (* a user at the workstation looks the object up and invokes it *)
      let wk, term = sys.cluster.Cluster.workstations.(0) in
      Terminal.set_echo term true;
      match Name_server.lookup sys.om "Rect01" with
      | None -> failwith "name server lost the binding"
      | Some bound ->
          let t1 =
            Thread.start sys.om ~origin:wk.Ra.Node.id ~obj:bound ~entry:"size"
              (Value.Pair (Value.Int 5, Value.Int 10))
          in
          ignore (Thread.join t1);

          (* the object is persistent: a second thread, scheduled on a
             different compute server, sees the same state through
             distributed shared memory *)
          let report =
            Obj_class.define ~name:"report"
              [
                Obj_class.entry "print_area" (fun ctx arg ->
                    let area =
                      Value.to_int
                        (ctx.Ctx.invoke ~obj:(Value.to_sysname arg)
                           ~entry:"area" Value.Unit)
                    in
                    ctx.Ctx.print (Printf.sprintf "%d" area);
                    Value.Int area);
              ]
          in
          Cluster.register_class sys.cluster report;
          let reporter =
            Object_manager.create_object sys.om ~class_name:"report" Value.Unit
          in
          let t2 =
            Thread.start sys.om ~origin:wk.Ra.Node.id ~obj:reporter
              ~entry:"print_area" (Value.of_sysname bound)
          in
          let area = Value.to_int (Thread.join t2) in
          Sim.sleep (Sim.Time.ms 50);
          Printf.printf "rect.area() = %d (expected 50)\n" area;
          Printf.printf "thread ran on compute server %d; output appeared on workstation %d\n"
            (Thread.node t2) wk.Ra.Node.id;
          assert (area = 50))
