(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index).

   Part 1 prints the reproduction tables — simulated time versus the
   paper's measurements — at full sample sizes.  Part 2 wraps each
   experiment in a Bechamel microbenchmark so the wall-clock cost of
   the simulation itself is tracked (one Test.make per table/figure).

   dune exec bench/main.exe            -- tables + bechamel
   dune exec bench/main.exe -- tables  -- reproduction tables only
   dune exec bench/main.exe -- bench   -- bechamel only *)

open Bechamel
open Toolkit

let reproduction_tables () =
  print_endline "Clouds reproduction: paper vs simulation";
  print_endline "========================================\n";
  print_string (Experiments.T1_kernel.report (Experiments.T1_kernel.run ()));
  print_newline ();
  print_string (Experiments.T2_network.report (Experiments.T2_network.run ()));
  print_newline ();
  print_string
    (Experiments.T3_invocation.report (Experiments.T3_invocation.run ()));
  print_newline ();
  print_string (Experiments.F1_sort.report (Experiments.F1_sort.run ()));
  print_newline ();
  print_string
    (Experiments.F2_consistency.report (Experiments.F2_consistency.run ()));
  print_newline ();
  print_string (Experiments.F3_pet.report (Experiments.F3_pet.run ~trials:25 ()));
  print_newline ();
  print_string (Experiments.Ablations.report ());
  print_newline ()

(* One Bechamel test per table/figure; each run executes the whole
   simulated experiment at a reduced size so a benchmark iteration
   stays sub-second. *)
let bechamel_tests =
  Test.make_grouped ~name:"clouds-repro"
    [
      Test.make ~name:"T1-kernel"
        (Staged.stage (fun () ->
             ignore (Experiments.T1_kernel.run ~samples:10 ())));
      Test.make ~name:"T2-network"
        (Staged.stage (fun () ->
             ignore (Experiments.T2_network.run ~samples:5 ())));
      Test.make ~name:"T3-invoke"
        (Staged.stage (fun () ->
             ignore (Experiments.T3_invocation.run ~invocations:20 ())));
      Test.make ~name:"F1-sort"
        (Staged.stage (fun () ->
             ignore
               (Experiments.F1_sort.run ~elements:4096 ~worker_counts:[ 1; 4 ] ())));
      Test.make ~name:"F2-consistency"
        (Staged.stage (fun () ->
             ignore (Experiments.F2_consistency.run ~samples:6 ())));
      Test.make ~name:"F3-pet"
        (Staged.stage (fun () ->
             ignore (Experiments.F3_pet.run ~trials:3 ())));
    ]

let run_bechamel () =
  print_endline "Bechamel: wall-clock cost of each simulated experiment";
  print_endline "=======================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:false
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
          Printf.printf "  %-28s %10.2f ms/run\n" name (est /. 1e6)
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    results;
  print_newline ()

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "tables" -> reproduction_tables ()
  | "bench" -> run_bechamel ()
  | _ ->
      reproduction_tables ();
      run_bechamel ()
