(* The Clouds user shell (paper §3.1).

   In the prototype, users on Unix workstations drove Clouds through a
   shell that created objects, bound names and issued invocations; all
   thread output came back to the user's terminal window.  This is
   that shell over the simulated cluster: it reads commands from a
   script file (or runs a built-in demo), executes them inside the
   simulation, and echoes terminal output.

     dune exec bin/clouds_shell.exe                 -- built-in demo
     dune exec bin/clouds_shell.exe -- myscript.cld
     dune exec bin/clouds_shell.exe -- --compute 4 --data 2 script.cld

   Commands:
     classes                       list loaded classes
     create CLASS NAME [INT]      instantiate and bind (arg to constructor)
     invoke NAME ENTRY [ARGS...]  run a thread; ints parse as ints
     lookup NAME | unbind NAME | names
     objects SERVER               directory listing of a data server
     nodes | time | tick MS
     crash ADDR | restart ADDR
     echo TEXT...                 print
*)

open Cmdliner
open Clouds

let rectangle =
  Obj_class.define ~name:"rectangle"
    [
      Obj_class.entry "size" (fun ctx arg ->
          let x, y = Value.to_pair arg in
          Memory.set_int ctx.Ctx.mem 0 (Value.to_int x);
          Memory.set_int ctx.Ctx.mem 8 (Value.to_int y);
          Value.Unit);
      Obj_class.entry "area" (fun ctx _ ->
          Value.Int (Memory.get_int ctx.Ctx.mem 0 * Memory.get_int ctx.Ctx.mem 8));
    ]

let counter =
  Obj_class.define ~name:"counter"
    ~constructor:(fun ctx arg ->
      match arg with
      | Value.Int n -> Memory.set_int ctx.Ctx.mem 0 n
      | _ -> ())
    [
      Obj_class.entry ~label:Obj_class.Gcp "incr" (fun ctx _ ->
          let v = Memory.get_int ctx.Ctx.mem 0 + 1 in
          Memory.set_int ctx.Ctx.mem 0 v;
          Value.Int v);
      Obj_class.entry "get" (fun ctx _ -> Value.Int (Memory.get_int ctx.Ctx.mem 0));
    ]

let parse_arg token =
  match int_of_string_opt token with
  | Some n -> Value.Int n
  | None -> Value.Str token

let collect_args = function
  | [] -> Value.Unit
  | [ one ] -> parse_arg one
  | [ a; b ] -> Value.Pair (parse_arg a, parse_arg b)
  | many -> Value.List (List.map parse_arg many)

let demo_script =
  [
    "echo -- the paper's 2.4 example --";
    "classes";
    "create rectangle Rect01";
    "invoke Rect01 size 5 10";
    "invoke Rect01 area";
    "echo -- persistence and names --";
    "create counter Tally 100";
    "invoke Tally incr";
    "invoke Tally incr";
    "invoke Tally get";
    "names";
    "echo -- a persistent lisp environment --";
    "create lisp-env Lisp";
    "lisp Lisp (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
    "lisp Lisp (fib 15)";
    "nodes";
    "objects 1";
    "time";
  ]

type shell = {
  sys : Clouds.system;
  mgr : Atomicity.Manager.t;
  term : Terminal.t;
  wk : Ra.Node.t;
}

let drain_terminal sh =
  List.iter (fun line -> Printf.printf "  | %s\n" line) (Terminal.output sh.term)

let exec_command sh line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | cmd :: rest -> (
      Printf.printf "clouds> %s\n" line;
      match (String.lowercase_ascii cmd, rest) with
      | "echo", words -> Printf.printf "%s\n" (String.concat " " words)
      | "help", _ ->
          print_endline
            "commands: classes create invoke lisp lookup unbind names objects nodes time tick crash restart echo"
      | "classes", _ ->
          Hashtbl.iter
            (fun name (cls : Obj_class.t) ->
              Printf.printf "  %-12s %d entries, %d data pages\n" name
                (List.length cls.Obj_class.entries)
                cls.Obj_class.data_pages)
            sh.sys.cluster.Cluster.classes
      | "create", cls :: name :: arg ->
          let obj =
            Object_manager.create_object sh.sys.om ~class_name:cls
              (collect_args arg)
          in
          Name_server.bind sh.sys.om ~name obj;
          Printf.printf "  created %s as \"%s\"\n" (Ra.Sysname.to_string obj) name
      | "invoke", name :: entry :: args -> (
          match Name_server.lookup sh.sys.om name with
          | None -> Printf.printf "  no such name: %s\n" name
          | Some obj -> (
              let th =
                Thread.start sh.sys.om ~origin:sh.wk.Ra.Node.id ~obj ~entry
                  (collect_args args)
              in
              match Thread.try_join th with
              | Ok v ->
                  Format.printf "  -> %a  (thread %d on compute server %d)@."
                    Value.pp v (Thread.id th) (Thread.node th)
              | Error e -> Printf.printf "  !! %s\n" (Printexc.to_string e)))
      | "lisp", name :: expr_tokens -> (
          (* evaluate an expression in a persistent lisp environment *)
          let src = String.concat " " expr_tokens in
          match Name_server.lookup sh.sys.om name with
          | None -> Printf.printf "  no such name: %s\n" name
          | Some obj -> (
              match
                Thread.try_join
                  (Thread.start sh.sys.om ~origin:sh.wk.Ra.Node.id ~obj
                     ~entry:"eval" (Value.Str src))
              with
              | Ok (Value.Str result) -> Printf.printf "  => %s\n" result
              | Ok _ -> print_endline "  !! bad reply"
              | Error e -> Printf.printf "  !! %s\n" (Printexc.to_string e)))
      | "lookup", [ name ] -> (
          match Name_server.lookup sh.sys.om name with
          | Some s -> Printf.printf "  %s -> %s\n" name (Ra.Sysname.to_string s)
          | None -> Printf.printf "  %s is not bound\n" name)
      | "unbind", [ name ] ->
          Name_server.unbind sh.sys.om name;
          Printf.printf "  unbound %s\n" name
      | "names", _ ->
          List.iter
            (fun (name, s) ->
              Printf.printf "  %-12s %s\n" name (Ra.Sysname.to_string s))
            (Name_server.bindings sh.sys.om)
      | "objects", [ server ] -> (
          match int_of_string_opt server with
          | None -> print_endline "  usage: objects SERVER-ADDR"
          | Some addr -> (
              match Cluster.server_at sh.sys.cluster addr with
              | None -> Printf.printf "  %d is not a data server\n" addr
              | Some srv ->
                  List.iter
                    (fun obj ->
                      match
                        Store.Directory.lookup (Dsm.Dsm_server.directory srv) obj
                      with
                      | Some d ->
                          Printf.printf "  %-12s class=%s segments=%d\n"
                            (Ra.Sysname.to_string obj)
                            d.Store.Directory.class_name
                            (List.length d.Store.Directory.entries)
                      | None -> ())
                    (Store.Directory.objects (Dsm.Dsm_server.directory srv))))
      | "nodes", _ ->
          let show (node : Ra.Node.t) =
            Printf.printf "  node %d: %s%s\n" node.Ra.Node.id
              (Format.asprintf "%a" Ra.Node.pp_kind node.Ra.Node.kind)
              (if node.Ra.Node.alive then "" else " (down)")
          in
          Array.iter show sh.sys.cluster.Cluster.data_nodes;
          Array.iter show sh.sys.cluster.Cluster.compute_nodes;
          Array.iter (fun (n, _) -> show n) sh.sys.cluster.Cluster.workstations
      | "time", _ -> Printf.printf "  simulated time: %.1f ms\n" (Sim.Time.to_ms_f (Sim.now ()))
      | "tick", [ ms ] -> (
          match int_of_string_opt ms with
          | Some ms ->
              Sim.sleep (Sim.Time.ms ms);
              Printf.printf "  advanced %d ms\n" ms
          | None -> print_endline "  usage: tick MS")
      | "crash", [ addr ] -> (
          match
            Option.bind (int_of_string_opt addr)
              (Cluster.node_by_id sh.sys.cluster)
          with
          | Some node ->
              Ra.Node.crash node;
              Printf.printf "  node %d crashed\n" node.Ra.Node.id
          | None -> print_endline "  usage: crash ADDR")
      | "restart", [ addr ] -> (
          match
            Option.bind (int_of_string_opt addr)
              (Cluster.node_by_id sh.sys.cluster)
          with
          | Some node ->
              Ra.Node.restart node;
              (match Cluster.server_at sh.sys.cluster node.Ra.Node.id with
              | Some srv -> Dsm.Dsm_server.recover srv
              | None -> ());
              Printf.printf "  node %d restarted\n" node.Ra.Node.id
          | None -> print_endline "  usage: restart ADDR")
      | _, _ -> Printf.printf "  unknown command: %s (try help)\n" cmd)

let main compute data script =
  let lines =
    match script with
    | Some path ->
        let ic = open_in path in
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        read []
    | None -> demo_script
  in
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute ~data ~workstations:1 () in
      let mgr = Atomicity.Manager.install sys.om () in
      Cluster.register_class sys.cluster rectangle;
      Cluster.register_class sys.cluster counter;
      Apps.Bank.register sys.om;
      Apps.Kv_store.register sys.om;
      Apps.Port.register sys.om;
      Apps.Lisp_env.register sys.om;
      let wk, term = sys.cluster.Cluster.workstations.(0) in
      let sh = { sys; mgr; term; wk } in
      List.iter
        (fun line ->
          let trimmed = String.trim line in
          if trimmed <> "" && not (String.length trimmed > 0 && trimmed.[0] = '#')
          then exec_command sh trimmed)
        lines;
      Printf.printf "\nterminal output at workstation %d:\n" wk.Ra.Node.id;
      drain_terminal sh);
  0

let cmd =
  let compute =
    Arg.(value & opt int 2 & info [ "compute" ] ~doc:"Compute servers.")
  in
  let data = Arg.(value & opt int 1 & info [ "data" ] ~doc:"Data servers.") in
  let script =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  Cmd.v
    (Cmd.info "clouds_shell" ~doc:"The Clouds user shell over a simulated cluster")
    Term.(const main $ compute $ data $ script)

let () = exit (Cmd.eval' cmd)
