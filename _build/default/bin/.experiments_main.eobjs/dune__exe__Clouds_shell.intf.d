bin/clouds_shell.mli:
