(* Tests for data-server stable storage: disk timing, segment store,
   write-ahead log and directory. *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let seg_gen = Ra.Sysname.make_gen ~node:0

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk_timing () =
  let elapsed =
    Sim.exec (fun () ->
        let cfg = { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2 } in
        let d = Store.Disk.create ~config:cfg "d" in
        let t0 = Sim.now () in
        Store.Disk.write d ~bytes:8192;
        Time.diff (Sim.now ()) t0)
  in
  check_int "seek + transfer" (Time.ms 12) elapsed

let test_disk_serializes () =
  let elapsed =
    Sim.exec (fun () ->
        let cfg = { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2 } in
        let d = Store.Disk.create ~config:cfg "d" in
        let done_ = Semaphore.create 0 in
        for _ = 1 to 2 do
          ignore
            (Sim.spawn "io" (fun () ->
                 Store.Disk.write d ~bytes:8192;
                 Semaphore.release done_))
        done;
        Semaphore.acquire done_;
        Semaphore.acquire done_;
        Sim.now ())
  in
  check_int "two writes serialize" (Time.ms 24) elapsed;
  ()

(* ------------------------------------------------------------------ *)
(* Segment store *)

let test_segment_lifecycle () =
  let s = Store.Segment_store.create "s" in
  let seg = Ra.Sysname.fresh seg_gen in
  check_bool "absent" false (Store.Segment_store.exists s seg);
  Store.Segment_store.create_segment s seg ~size:(2 * Ra.Page.size);
  check_bool "present" true (Store.Segment_store.exists s seg);
  check_int "size" (2 * Ra.Page.size) (Store.Segment_store.size s seg);
  check_bool "duplicate create rejected" true
    (try
       Store.Segment_store.create_segment s seg ~size:1;
       false
     with Invalid_argument _ -> true);
  Store.Segment_store.delete_segment s seg;
  check_bool "deleted" false (Store.Segment_store.exists s seg)

let test_segment_pages () =
  let s = Store.Segment_store.create "s" in
  let seg = Ra.Sysname.fresh seg_gen in
  Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
  (match Store.Segment_store.read_page s seg 0 with
  | Ra.Partition.Zeroed -> ()
  | Ra.Partition.Data _ -> Alcotest.fail "untouched page should be zeroed");
  let page = Bytes.make Ra.Page.size 'p' in
  Store.Segment_store.write_page s seg 0 page;
  (match Store.Segment_store.read_page s seg 0 with
  | Ra.Partition.Data d ->
      check_bool "roundtrip" true (Bytes.equal d page);
      (* mutation of the returned buffer must not alias the store *)
      Bytes.set d 0 'q';
      (match Store.Segment_store.read_page s seg 0 with
      | Ra.Partition.Data d2 -> check_bool "no aliasing" true (Bytes.get d2 0 = 'p')
      | Ra.Partition.Zeroed -> Alcotest.fail "lost page")
  | Ra.Partition.Zeroed -> Alcotest.fail "wrote page");
  let missing = Ra.Sysname.fresh seg_gen in
  check_bool "missing segment raises" true
    (try
       ignore (Store.Segment_store.read_page s missing 0);
       false
     with Ra.Partition.No_segment _ -> true)

let test_local_partition () =
  Sim.exec (fun () ->
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      let p = Store.Segment_store.local_partition s in
      (match p.Ra.Partition.fetch ~seg ~page:0 ~mode:Ra.Partition.Read with
      | Ra.Partition.Zeroed -> ()
      | Ra.Partition.Data _ -> Alcotest.fail "expected zeroed");
      p.Ra.Partition.writeback ~seg ~page:0 (Bytes.make Ra.Page.size 'w');
      match p.Ra.Partition.fetch ~seg ~page:0 ~mode:Ra.Partition.Read with
      | Ra.Partition.Data d -> check_bool "written" true (Bytes.get d 0 = 'w')
      | Ra.Partition.Zeroed -> Alcotest.fail "expected data")

(* ------------------------------------------------------------------ *)
(* WAL *)

let page_of_char c = Bytes.make Ra.Page.size c

let test_wal_recover_committed () =
  Sim.exec (fun () ->
      let disk = Store.Disk.create "d" in
      let wal = Store.Wal.create disk in
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      Store.Wal.append wal
        (Store.Wal.Prepared { txn = (1, 1); writes = [ (seg, 0, page_of_char 'a') ] });
      Store.Wal.append wal (Store.Wal.Committed (1, 1));
      (* an undecided transaction, must be presumed aborted *)
      Store.Wal.append wal
        (Store.Wal.Prepared { txn = (1, 2); writes = [ (seg, 0, page_of_char 'b') ] });
      let applied = ref [] in
      Store.Wal.recover wal s ~decide:(fun _ -> `Abort) ~applied;
      Alcotest.(check (list (pair int int))) "applied" [ (1, 1) ] !applied;
      (match Store.Segment_store.read_page s seg 0 with
      | Ra.Partition.Data d -> check_bool "committed applied" true (Bytes.get d 0 = 'a')
      | Ra.Partition.Zeroed -> Alcotest.fail "not applied");
      (* the undecided txn now has an abort marker *)
      let aborted =
        List.exists
          (function Store.Wal.Aborted (1, 2) -> true | _ -> false)
          (Store.Wal.records wal)
      in
      check_bool "presumed abort logged" true aborted)

let test_wal_costs_disk_time () =
  let elapsed =
    Sim.exec (fun () ->
        let cfg = { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2 } in
        let disk = Store.Disk.create ~config:cfg "d" in
        let wal = Store.Wal.create disk in
        let t0 = Sim.now () in
        Store.Wal.append wal (Store.Wal.Committed (1, 1));
        Time.diff (Sim.now ()) t0)
  in
  check_bool "durable append costs time" true (elapsed >= Time.ms 10)

let test_wal_truncate () =
  Sim.exec (fun () ->
      let disk = Store.Disk.create "d" in
      let wal = Store.Wal.create disk in
      Store.Wal.append wal (Store.Wal.Committed (1, 1));
      Store.Wal.truncate wal;
      check_int "empty" 0 (List.length (Store.Wal.records wal)))

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory () =
  let d = Store.Directory.create () in
  let obj = Ra.Sysname.fresh seg_gen in
  let code = Ra.Sysname.fresh seg_gen in
  let desc =
    {
      Store.Directory.class_name = "rectangle";
      home = 1;
      entries = [ { Store.Directory.role = "code"; seg = code; size = 8192 } ];
    }
  in
  check_bool "empty" true (Store.Directory.lookup d obj = None);
  Store.Directory.register d obj desc;
  (match Store.Directory.lookup d obj with
  | Some found ->
      Alcotest.(check string) "class" "rectangle" found.Store.Directory.class_name
  | None -> Alcotest.fail "registered but not found");
  check_int "listed" 1 (List.length (Store.Directory.objects d));
  check_bool "bytes positive" true (Store.Directory.descriptor_bytes desc > 64);
  Store.Directory.remove d obj;
  check_bool "removed" true (Store.Directory.lookup d obj = None)

let () =
  Alcotest.run "store"
    [
      ( "disk",
        [
          Alcotest.test_case "timing" `Quick test_disk_timing;
          Alcotest.test_case "serializes" `Quick test_disk_serializes;
        ] );
      ( "segments",
        [
          Alcotest.test_case "lifecycle" `Quick test_segment_lifecycle;
          Alcotest.test_case "pages" `Quick test_segment_pages;
          Alcotest.test_case "local partition" `Quick test_local_partition;
        ] );
      ( "wal",
        [
          Alcotest.test_case "recover committed only" `Quick
            test_wal_recover_committed;
          Alcotest.test_case "append costs disk time" `Quick
            test_wal_costs_disk_time;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
        ] );
      ("directory", [ Alcotest.test_case "crud" `Quick test_directory ]);
    ]
