(* Tests for PET: replica groups, state propagation, quorum commit,
   and resilience to static and dynamic failures. *)

open Sim
open Clouds

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A replicated ledger: the balance lives in the first data word. *)
let ledger =
  let get ctx = Memory.get_int ctx.Ctx.mem 0 in
  let set ctx v = Memory.set_int ctx.Ctx.mem 0 v in
  Obj_class.define ~name:"ledger"
    [
      Obj_class.entry ~label:Obj_class.Gcp "apply" (fun ctx arg ->
          let v = get ctx in
          ctx.Ctx.compute (Time.ms 50);
          set ctx (v + Value.to_int arg);
          Value.Int (v + Value.to_int arg));
      Obj_class.entry ~label:Obj_class.Gcp "slow_apply" (fun ctx arg ->
          let v = get ctx in
          ctx.Ctx.compute (Time.ms 400);
          set ctx (v + Value.to_int arg);
          Value.Int (v + Value.to_int arg));
      Obj_class.entry ~label:Obj_class.S "read" (fun ctx _ -> Value.Int (get ctx));
    ]

let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Time.ms 20;
    max_attempts = 3;
  }

type env = { sys : Clouds.system; mgr : Atomicity.Manager.t }

let with_env ?(compute = 3) ?(data = 3) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~compute ~data ~workstations:1 ()
      in
      let mgr =
        Atomicity.Manager.install sys.om ~deadlock_timeout:(Time.ms 300)
          ~max_retries:5 ()
      in
      Cluster.register_class sys.cluster ledger;
      f { sys; mgr })

let direct env ?(node = env.sys.cluster.Cluster.compute_nodes.(0)) obj entry arg
    =
  Object_manager.invoke env.sys.om ~node ~thread_id:0 ~origin:None ~txn:None
    ~obj ~entry arg

let member_value env group i =
  Value.to_int (direct env (Pet.Replica.pick group i) "read" Value.Unit)

(* ------------------------------------------------------------------ *)

let test_group_creation () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      check_int "three members" 3 (Pet.Replica.degree group);
      let homes = Array.to_list group.Pet.Replica.homes in
      check_int "distinct data servers" 3
        (List.length (List.sort_uniq Int.compare homes));
      check_bool "degree above data servers rejected" true
        (try
           ignore
             (Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:4
                Value.Unit);
           false
         with Invalid_argument _ -> true))

let test_copy_state () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:2 Value.Unit in
      ignore (direct env (Pet.Replica.pick group 0) "apply" (Value.Int 41));
      check_int "source updated" 41 (member_value env group 0);
      check_int "target untouched" 0 (member_value env group 1);
      check_bool "copy succeeds" true
        (Pet.Replica.copy_state env.sys.om group ~from_index:0 ~to_index:1);
      check_int "target caught up" 41 (member_value env group 1))

let test_basic_pet_run () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:2 ~quorum:2
          (Value.Int 7)
      in
      check_bool "value produced" true (outcome.Pet.Runner.value = Some (Value.Int 7));
      check_bool "quorum reached" true outcome.Pet.Runner.quorum_ok;
      check_int "all replicas updated" 3 outcome.Pet.Runner.replicas_updated;
      (* every replica converged to exactly one application *)
      for i = 0 to 2 do
        check_int (Printf.sprintf "replica %d" i) 7 (member_value env group i)
      done)

let test_losers_do_not_double_apply () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:3 ~quorum:3
          (Value.Int 1)
      in
      check_bool "succeeded" true outcome.Pet.Runner.quorum_ok;
      (* three parallel threads each incremented *their* replica by 1;
         propagation must leave every replica with exactly 1 *)
      for i = 0 to 2 do
        check_int (Printf.sprintf "replica %d applied once" i) 1
          (member_value env group i)
      done)

let test_dynamic_compute_crash () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      (* kill the first compute server while the PETs are working *)
      let victim = env.sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id in
      Pet.Failure.crash_at env.sys.cluster victim (Time.ms 100);
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"slow_apply" ~parallel:2 ~quorum:2
          (Value.Int 5)
      in
      check_bool "computation survived the crash" true
        outcome.Pet.Runner.quorum_ok;
      check_bool "result produced" true
        (outcome.Pet.Runner.value = Some (Value.Int 5)))

let test_static_data_server_failure () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      (* one replica's data server is already down when we start *)
      Pet.Failure.crash_now env.sys.cluster group.Pet.Replica.homes.(1);
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:3 ~quorum:2
          (Value.Int 9)
      in
      check_bool "quorum reached without the dead replica" true
        outcome.Pet.Runner.quorum_ok;
      check_int "two replicas updated" 2 outcome.Pet.Runner.replicas_updated;
      (* the survivors hold the committed value *)
      check_int "replica 0" 9 (member_value env group 0);
      check_int "replica 2" 9 (member_value env group 2))

let test_quorum_unreachable () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      Pet.Failure.crash_now env.sys.cluster group.Pet.Replica.homes.(1);
      Pet.Failure.crash_now env.sys.cluster group.Pet.Replica.homes.(2);
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:3 ~quorum:2
          (Value.Int 3)
      in
      (* one replica still works, so a thread completes, but the
         quorum cannot be met *)
      check_bool "no quorum" false outcome.Pet.Runner.quorum_ok;
      check_bool "fewer than quorum updated" true
        (outcome.Pet.Runner.replicas_updated < 2))

let test_all_threads_fail () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      (* every data server down: no thread can even activate *)
      Array.iter
        (fun home -> Pet.Failure.crash_now env.sys.cluster home)
        group.Pet.Replica.homes;
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:2 ~quorum:1
          (Value.Int 1)
      in
      check_bool "no value" true (outcome.Pet.Runner.value = None);
      check_bool "no quorum" false outcome.Pet.Runner.quorum_ok)

let test_resource_cost_grows_with_parallelism () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      let o1 =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:1 ~quorum:1
          (Value.Int 1)
      in
      let o3 =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:3 ~quorum:1
          (Value.Int 1)
      in
      check_bool "both succeeded" true
        (o1.Pet.Runner.quorum_ok && o3.Pet.Runner.quorum_ok);
      check_bool
        (Printf.sprintf "3 threads cost more (%.1f vs %.1f thread-ms)"
           o3.Pet.Runner.thread_ms o1.Pet.Runner.thread_ms)
        true
        (o3.Pet.Runner.thread_ms > o1.Pet.Runner.thread_ms))

let test_recovered_server_catches_up () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:2 Value.Unit in
      Pet.Failure.crash_now env.sys.cluster group.Pet.Replica.homes.(1);
      let outcome =
        Pet.Runner.run env.mgr ~group ~entry:"apply" ~parallel:2 ~quorum:1
          (Value.Int 4)
      in
      check_bool "committed on the survivor" true outcome.Pet.Runner.quorum_ok;
      (* the dead server comes back and is synchronized explicitly *)
      Pet.Failure.restart_at env.sys.cluster group.Pet.Replica.homes.(1) 0;
      Sim.sleep (Time.ms 100);
      check_bool "resync" true
        (Pet.Replica.copy_state env.sys.om group ~from_index:0 ~to_index:1);
      check_int "caught up" 4 (member_value env group 1))

let test_live_members () =
  with_env (fun env ->
      let group = Pet.Replica.create env.sys.om ~class_name:"ledger" ~degree:3 Value.Unit in
      Alcotest.(check (list int))
        "all live" [ 0; 1; 2 ]
        (Pet.Replica.live_members env.sys.om group);
      Pet.Failure.crash_now env.sys.cluster group.Pet.Replica.homes.(1);
      Alcotest.(check (list int))
        "one down" [ 0; 2 ]
        (Pet.Replica.live_members env.sys.om group))

let () =
  Alcotest.run "pet"
    [
      ( "replicas",
        [
          Alcotest.test_case "group creation" `Quick test_group_creation;
          Alcotest.test_case "copy state" `Quick test_copy_state;
          Alcotest.test_case "live members" `Quick test_live_members;
        ] );
      ( "runs",
        [
          Alcotest.test_case "basic run" `Quick test_basic_pet_run;
          Alcotest.test_case "losers do not double apply" `Quick
            test_losers_do_not_double_apply;
          Alcotest.test_case "resource cost grows" `Quick
            test_resource_cost_grows_with_parallelism;
        ] );
      ( "failures",
        [
          Alcotest.test_case "dynamic compute crash" `Quick
            test_dynamic_compute_crash;
          Alcotest.test_case "static data server failure" `Quick
            test_static_data_server_failure;
          Alcotest.test_case "quorum unreachable" `Quick
            test_quorum_unreachable;
          Alcotest.test_case "all threads fail" `Quick test_all_threads_fail;
          Alcotest.test_case "recovered server catches up" `Quick
            test_recovered_server_catches_up;
        ] );
    ]
