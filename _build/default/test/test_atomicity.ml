(* Tests for consistency-preserving threads: automatic locking,
   commit/abort/recovery, isolation, deadlock breaking, and the
   s / lcp / gcp semantics of §5.2.1. *)

open Sim
open Clouds

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A bank account: balance in the first persistent data word. *)
let account =
  let get ctx = Memory.get_int ctx.Ctx.mem 0 in
  let set ctx v = Memory.set_int ctx.Ctx.mem 0 v in
  let deposit ctx arg =
    let v = get ctx in
    ctx.Ctx.compute (Time.us 200);
    set ctx (v + Value.to_int arg);
    Value.Int (v + Value.to_int arg)
  in
  Obj_class.define ~name:"account"
    [
      Obj_class.entry ~label:Obj_class.Gcp "deposit" deposit;
      Obj_class.entry ~label:Obj_class.Lcp "deposit_lcp" deposit;
      Obj_class.entry ~label:Obj_class.S "deposit_s" deposit;
      Obj_class.entry ~label:Obj_class.Gcp "balance_gcp" (fun ctx _ ->
          Value.Int (get ctx));
      Obj_class.entry ~label:Obj_class.S "balance" (fun ctx _ ->
          Value.Int (get ctx));
      Obj_class.entry ~label:Obj_class.Gcp "deposit_then_fail" (fun ctx arg ->
          set ctx (get ctx + Value.to_int arg);
          failwith "induced failure");
      (* join the ambient transaction when called from another entry *)
      Obj_class.entry ~label:Obj_class.S "add_in_txn" (fun ctx arg ->
          set ctx (get ctx + Value.to_int arg);
          Value.Unit);
      Obj_class.entry ~label:Obj_class.S "touch" (fun ctx _ ->
          set ctx (get ctx + 1);
          Value.Unit);
    ]

let transfer_cls =
  Obj_class.define ~name:"transfer"
    [
      Obj_class.entry ~label:Obj_class.Gcp "transfer" (fun ctx arg ->
          match Value.to_list arg with
          | [ from_v; to_v; amt ] ->
              let amount = Value.to_int amt in
              ignore
                (ctx.Ctx.invoke ~obj:(Value.to_sysname from_v)
                   ~entry:"add_in_txn"
                   (Value.Int (-amount)));
              ignore
                (ctx.Ctx.invoke ~obj:(Value.to_sysname to_v) ~entry:"add_in_txn"
                   (Value.Int amount));
              Value.Unit
          | _ -> invalid_arg "transfer");
      Obj_class.entry ~label:Obj_class.Gcp "transfer_fail" (fun ctx arg ->
          match Value.to_list arg with
          | [ from_v; to_v; amt ] ->
              let amount = Value.to_int amt in
              ignore
                (ctx.Ctx.invoke ~obj:(Value.to_sysname from_v)
                   ~entry:"add_in_txn"
                   (Value.Int (-amount)));
              ignore
                (ctx.Ctx.invoke ~obj:(Value.to_sysname to_v) ~entry:"add_in_txn"
                   (Value.Int amount));
              failwith "crash after both updates";
          | _ -> invalid_arg "transfer");
      Obj_class.entry ~label:Obj_class.Gcp "lock_two" (fun ctx arg ->
          let a, b = Value.to_pair arg in
          ignore (ctx.Ctx.invoke ~obj:(Value.to_sysname a) ~entry:"touch" Value.Unit);
          ctx.Ctx.compute (Time.ms 20);
          ignore (ctx.Ctx.invoke ~obj:(Value.to_sysname b) ~entry:"touch" Value.Unit);
          Value.Unit);
    ]

type env = {
  sys : Clouds.system;
  mgr : Atomicity.Manager.t;
}

(* Fast transport so crash-related timeouts stay small. *)
let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Time.ms 20;
    max_attempts = 3;
  }

let with_env ?(compute = 2) ?(data = 2) ?(deadlock_timeout = Time.ms 300)
    ?(max_retries = 10) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~compute ~data ~workstations:1 ()
      in
      let mgr =
        Atomicity.Manager.install sys.om ~deadlock_timeout ~max_retries ()
      in
      Cluster.register_class sys.cluster account;
      Cluster.register_class sys.cluster transfer_cls;
      f { sys; mgr })

let direct env ?(node = env.sys.cluster.Cluster.compute_nodes.(0))
    ?(thread_id = 0) obj entry arg =
  Object_manager.invoke env.sys.om ~node ~thread_id ~origin:None ~txn:None ~obj
    ~entry arg

(* Read the account's balance straight from its data server's stable
   store (what survives crashes). *)
let stored_balance env obj =
  let home = Ra.Sysname.Table.find env.sys.cluster.Cluster.obj_home obj in
  match Cluster.server_at env.sys.cluster home with
  | None -> Alcotest.fail "no server"
  | Some server -> (
      match Store.Directory.lookup (Dsm.Dsm_server.directory server) obj with
      | None -> Alcotest.fail "no descriptor"
      | Some desc -> (
          let data_seg =
            List.find
              (fun e -> String.equal e.Store.Directory.role "data")
              desc.Store.Directory.entries
          in
          match
            Store.Segment_store.read_page (Dsm.Dsm_server.store server)
              data_seg.Store.Directory.seg 0
          with
          | Ra.Partition.Zeroed -> 0
          | Ra.Partition.Data b -> Int64.to_int (Bytes.get_int64_le b 0)))

(* ------------------------------------------------------------------ *)

let test_gcp_commit_is_durable () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      check_int "reply" 100 (Value.to_int (direct env acct "deposit" (Value.Int 100)));
      (* committed state reached stable storage *)
      check_int "stored" 100 (stored_balance env acct);
      check_int "one commit" 1 (Atomicity.Manager.commits env.mgr))

let test_s_thread_update_is_volatile () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let n0 = env.sys.cluster.Cluster.compute_nodes.(0) in
      check_int "reply" 50
        (Value.to_int (direct env ~node:n0 acct "deposit_s" (Value.Int 50)));
      (* no commit: stable store still has the old value *)
      check_int "store unchanged" 0 (stored_balance env acct);
      (* and a compute-server crash loses the update entirely *)
      Ra.Node.crash n0;
      let n1 = env.sys.cluster.Cluster.compute_nodes.(1) in
      check_int "lost after crash" 0
        (Value.to_int (direct env ~node:n1 acct "balance" Value.Unit)))

let test_gcp_survives_compute_crash () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let n0 = env.sys.cluster.Cluster.compute_nodes.(0) in
      ignore (direct env ~node:n0 acct "deposit" (Value.Int 70));
      Ra.Node.crash n0;
      let n1 = env.sys.cluster.Cluster.compute_nodes.(1) in
      check_int "survives" 70
        (Value.to_int (direct env ~node:n1 acct "balance" Value.Unit)))

let test_user_exception_rolls_back () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      ignore (direct env acct "deposit" (Value.Int 10));
      (try ignore (direct env acct "deposit_then_fail" (Value.Int 5))
       with Failure _ -> ());
      check_int "rolled back" 10
        (Value.to_int (direct env acct "balance" Value.Unit));
      check_int "stored rolled back" 10 (stored_balance env acct);
      check_bool "an abort happened" true (Atomicity.Manager.aborts env.mgr >= 1))

let test_multi_object_transfer_atomic () =
  with_env (fun env ->
      (* two accounts, placed on different data servers *)
      let a =
        Object_manager.create_object env.sys.om ~home:1 ~class_name:"account" Value.Unit
      in
      let b =
        Object_manager.create_object env.sys.om ~home:2 ~class_name:"account" Value.Unit
      in
      let xfer = Object_manager.create_object env.sys.om ~class_name:"transfer" Value.Unit in
      ignore (direct env a "deposit" (Value.Int 100));
      ignore
        (direct env xfer "transfer"
           (Value.List [ Value.of_sysname a; Value.of_sysname b; Value.Int 30 ]));
      check_int "debited" 70 (Value.to_int (direct env a "balance" Value.Unit));
      check_int "credited" 30 (Value.to_int (direct env b "balance" Value.Unit));
      check_int "stored debit" 70 (stored_balance env a);
      check_int "stored credit" 30 (stored_balance env b))

let test_failed_transfer_rolls_back_both () =
  with_env (fun env ->
      let a =
        Object_manager.create_object env.sys.om ~home:1 ~class_name:"account" Value.Unit
      in
      let b =
        Object_manager.create_object env.sys.om ~home:2 ~class_name:"account" Value.Unit
      in
      let xfer = Object_manager.create_object env.sys.om ~class_name:"transfer" Value.Unit in
      ignore (direct env a "deposit" (Value.Int 100));
      (try
         ignore
           (direct env xfer "transfer_fail"
              (Value.List [ Value.of_sysname a; Value.of_sysname b; Value.Int 30 ]))
       with Failure _ -> ());
      check_int "a unchanged" 100 (Value.to_int (direct env a "balance" Value.Unit));
      check_int "b unchanged" 0 (Value.to_int (direct env b "balance" Value.Unit));
      check_int "stored a" 100 (stored_balance env a);
      check_int "stored b" 0 (stored_balance env b))

let test_gcp_isolation_no_lost_updates () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let threads =
        List.init 5 (fun _ ->
            Thread.start env.sys.om ~obj:acct ~entry:"deposit" (Value.Int 1))
      in
      List.iter
        (fun th ->
          match Thread.try_join th with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "deposit thread failed: %s" (Printexc.to_string e))
        threads;
      check_int "serialized increments" 5
        (Value.to_int (direct env acct "balance" Value.Unit)))

let test_lcp_local_consistency () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let rpcs_before = Atomicity.Manager.lock_rpcs env.mgr in
      let n0 = env.sys.cluster.Cluster.compute_nodes.(0) in
      let node_addr = n0.Ra.Node.id in
      let threads =
        List.init 5 (fun _ ->
            Thread.start env.sys.om ~on:node_addr ~obj:acct ~entry:"deposit_lcp"
              (Value.Int 1))
      in
      List.iter (fun th -> ignore (Thread.join th)) threads;
      check_int "serialized on the node" 5
        (Value.to_int (direct env ~node:n0 acct "balance" Value.Unit));
      (* lcp commits reached the store without any global lock rpcs *)
      check_int "no lock rpcs" rpcs_before (Atomicity.Manager.lock_rpcs env.mgr);
      check_int "stored" 5 (stored_balance env acct))

let test_read_only_gcp_releases_locks () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      check_int "read only" 0
        (Value.to_int (direct env acct "balance_gcp" Value.Unit));
      (* if the read locks leaked, this write transaction would abort *)
      check_int "write after read-only txn" 5
        (Value.to_int (direct env acct "deposit" (Value.Int 5))))

let test_deadlock_broken_and_retried () =
  with_env (fun env ->
      let a = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let b = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let xfer = Object_manager.create_object env.sys.om ~class_name:"transfer" Value.Unit in
      let t1 =
        Thread.start env.sys.om ~obj:xfer ~entry:"lock_two"
          (Value.Pair (Value.of_sysname a, Value.of_sysname b))
      in
      let t2 =
        Thread.start env.sys.om ~obj:xfer ~entry:"lock_two"
          (Value.Pair (Value.of_sysname b, Value.of_sysname a))
      in
      ignore (Thread.join t1);
      ignore (Thread.join t2);
      (* every touch survived exactly once per committed transaction *)
      check_int "a touched twice" 2
        (Value.to_int (direct env a "balance" Value.Unit));
      check_int "b touched twice" 2
        (Value.to_int (direct env b "balance" Value.Unit));
      check_bool "the deadlock caused an abort+retry" true
        (Atomicity.Manager.retries env.mgr >= 1))

let test_abort_thread_releases_locks () =
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let slow =
        Obj_class.define ~name:"slow"
          [
            Obj_class.entry ~label:Obj_class.Gcp "hold" (fun ctx arg ->
                ignore
                  (ctx.Ctx.invoke ~obj:(Value.to_sysname arg) ~entry:"touch"
                     Value.Unit);
                ctx.Ctx.compute (Time.sec 30);
                Value.Unit);
          ]
      in
      Cluster.register_class env.sys.cluster slow;
      let holder = Object_manager.create_object env.sys.om ~class_name:"slow" Value.Unit in
      let th =
        Thread.start env.sys.om ~obj:holder ~entry:"hold" (Value.of_sysname acct)
      in
      Sim.sleep (Time.ms 200);
      (* the holder now has the account write-locked; its machine
         crashes, and the failure detector aborts its transactions *)
      (match Cluster.node_by_id env.sys.cluster (Thread.node th) with
      | Some n -> Ra.Node.crash n
      | None -> Alcotest.fail "holder node missing");
      Atomicity.Manager.abort_thread env.mgr ~thread_id:(Thread.id th);
      (* a new transaction on a surviving node can lock the account *)
      let survivor =
        if Thread.node th = env.sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id
        then env.sys.cluster.Cluster.compute_nodes.(1)
        else env.sys.cluster.Cluster.compute_nodes.(0)
      in
      let t0 = Sim.now () in
      check_int "deposit proceeds" 1
        (Value.to_int (direct env ~node:survivor acct "deposit" (Value.Int 1)));
      check_bool "no deadlock wait" true
        (Time.diff (Sim.now ()) t0 < Time.sec 5))

let test_mixed_s_bypasses_locks () =
  (* an s-thread can read data a gcp transaction holds write-locked:
     the paper's "dangerous" interleaving is possible by design *)
  with_env (fun env ->
      let acct = Object_manager.create_object env.sys.om ~class_name:"account" Value.Unit in
      let slow =
        Obj_class.define ~name:"slow2"
          [
            Obj_class.entry ~label:Obj_class.Gcp "hold" (fun ctx arg ->
                ignore
                  (ctx.Ctx.invoke ~obj:(Value.to_sysname arg) ~entry:"add_in_txn"
                     (Value.Int 99));
                ctx.Ctx.compute (Time.ms 500);
                Value.Unit);
          ]
      in
      Cluster.register_class env.sys.cluster slow;
      let holder = Object_manager.create_object env.sys.om ~class_name:"slow2" Value.Unit in
      let th =
        Thread.start env.sys.om ~obj:holder ~entry:"hold" (Value.of_sysname acct)
      in
      Sim.sleep (Time.ms 100);
      (* gcp txn in progress; an s-thread read on another machine is
         not blocked by the write lock *)
      let other =
        if Thread.node th = env.sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id
        then env.sys.cluster.Cluster.compute_nodes.(1)
        else env.sys.cluster.Cluster.compute_nodes.(0)
      in
      let t0 = Sim.now () in
      let v = Value.to_int (direct env ~node:other acct "balance" Value.Unit) in
      check_bool "s-read did not block on the write lock" true
        (Time.diff (Sim.now ()) t0 < Time.ms 400);
      (* it may even see the uncommitted 99 - that is the documented
         dangerous behaviour; just check it is one of the two values *)
      check_bool "saw either state" true (v = 0 || v = 99);
      ignore (Thread.join th))

let test_indoubt_participant_learns_commit () =
  (* the classic 2PC window: participant B crashes after voting yes
     but before the commit arrives; the coordinator decided COMMIT and
     applied at participant A.  At recovery, B must ask the
     coordinator and apply - presumed abort here would lose money. *)
  with_env (fun env ->
      let a = Apps.Bank.open_account env.sys.om ~home:1 ~balance:100 () in
      let b = Apps.Bank.open_account env.sys.om ~home:2 ~balance:0 () in
      let office = Apps.Bank.create_office env.sys.om in
      let server2 = Option.get (Cluster.server_at env.sys.cluster 2) in
      (* crash server 2 the moment its WAL shows a prepared txn *)
      let eng = Sim.engine () in
      let rec arm () =
        Engine.at eng
          (Time.add (Engine.now eng) (Time.ms 1))
          (fun () ->
            let prepared =
              List.exists
                (function Store.Wal.Prepared _ -> true | _ -> false)
                (Store.Wal.records (Dsm.Dsm_server.wal server2))
            in
            if prepared then
              (* let the yes-vote reach the coordinator, then die
                 before the commit decision arrives *)
              Engine.at eng
                (Time.add (Engine.now eng) (Time.ms 5))
                (fun () -> Ra.Node.crash (Dsm.Dsm_server.node server2))
            else arm ())
      in
      arm ();
      let th =
        Thread.start env.sys.om ~obj:office ~entry:"transfer"
          (Value.List [ Value.of_sysname a; Value.of_sysname b; Value.Int 30 ])
      in
      (* the coordinator treats the lost Commit ack as best-effort *)
      (match Thread.try_join th with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "transfer failed: %s" (Printexc.to_string e));
      check_int "A committed the debit" 70 (stored_balance env a);
      (* B recovers and resolves the in-doubt transaction *)
      Ra.Node.restart (Dsm.Dsm_server.node server2);
      Dsm.Dsm_server.recover server2;
      check_int "B applied the in-doubt credit at recovery" 30
        (stored_balance env b))

let test_money_conserved_under_random_server_crashes () =
  (* transfers against a data server that crashes and recovers at a
     random moment: whatever completes or aborts, no money is created
     or destroyed in stable storage *)
  for seed = 1 to 6 do
    Sim.exec ~seed (fun () ->
        let eng = Sim.engine () in
        let sys =
          Clouds.boot eng ~ratp_config:fast_ratp ~compute:2 ~data:2
            ~workstations:1 ()
        in
        let mgr =
          Atomicity.Manager.install sys.om ~deadlock_timeout:(Time.ms 300)
            ~max_retries:3 ()
        in
        ignore mgr;
        let env = { sys; mgr } in
        let a = Apps.Bank.open_account sys.om ~home:1 ~balance:500 () in
        let b = Apps.Bank.open_account sys.om ~home:2 ~balance:500 () in
        let office = Apps.Bank.create_office sys.om in
        let rng = Rng.split (Engine.rng eng) in
        let crash_at = Time.ms (20 + Rng.int rng 200) in
        let server2 = Option.get (Cluster.server_at sys.cluster 2) in
        Engine.at eng crash_at (fun () ->
            Ra.Node.crash (Dsm.Dsm_server.node server2));
        Engine.at eng (Time.add crash_at (Time.ms 300)) (fun () ->
            Ra.Node.restart (Dsm.Dsm_server.node server2);
            Dsm.Dsm_server.recover server2);
        let threads =
          List.init 6 (fun i ->
              let amount = 10 + (5 * i) in
              let src, dst = if i mod 2 = 0 then (a, b) else (b, a) in
              Thread.start sys.om ~obj:office ~entry:"transfer"
                (Value.List
                   [ Value.of_sysname src; Value.of_sysname dst;
                     Value.Int amount ]))
        in
        List.iter (fun th -> ignore (Thread.try_join th)) threads;
        Sim.sleep (Time.sec 2);
        let total = stored_balance env a + stored_balance env b in
        Alcotest.(check int)
          (Printf.sprintf "money conserved (seed %d)" seed)
          1000 total)
  done

let test_name_bindings_survive_compute_crash () =
  (* the name server is an object; with lcp binds its state commits
     to the data server, so naming survives losing every compute
     server's memory *)
  with_env (fun env ->
      let acct = Apps.Bank.open_account env.sys.om ~balance:1 () in
      Clouds.Name_server.bind env.sys.om ~name:"Payroll" acct;
      Array.iter Ra.Node.crash env.sys.cluster.Cluster.compute_nodes;
      Array.iter Ra.Node.restart env.sys.cluster.Cluster.compute_nodes;
      Sim.sleep (Time.ms 100);
      match Clouds.Name_server.lookup env.sys.om "Payroll" with
      | Some s -> check_bool "binding survived" true (Ra.Sysname.equal s acct)
      | None -> Alcotest.fail "binding lost with the compute servers")

let test_wal_records_commits () =
  with_env (fun env ->
      let acct =
        Object_manager.create_object env.sys.om ~home:1 ~class_name:"account" Value.Unit
      in
      ignore (direct env acct "deposit" (Value.Int 5));
      match Cluster.server_at env.sys.cluster 1 with
      | None -> Alcotest.fail "no server"
      | Some server ->
          let records = Store.Wal.records (Dsm.Dsm_server.wal server) in
          check_bool "prepare logged" true
            (List.exists
               (function Store.Wal.Prepared _ -> true | _ -> false)
               records);
          check_bool "commit logged" true
            (List.exists
               (function Store.Wal.Committed _ -> true | _ -> false)
               records))

let () =
  Alcotest.run "atomicity"
    [
      ( "durability",
        [
          Alcotest.test_case "gcp commit is durable" `Quick
            test_gcp_commit_is_durable;
          Alcotest.test_case "s update is volatile" `Quick
            test_s_thread_update_is_volatile;
          Alcotest.test_case "gcp survives compute crash" `Quick
            test_gcp_survives_compute_crash;
          Alcotest.test_case "wal records commits" `Quick
            test_wal_records_commits;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "user exception rolls back" `Quick
            test_user_exception_rolls_back;
          Alcotest.test_case "failed transfer rolls back both" `Quick
            test_failed_transfer_rolls_back_both;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "multi-object transfer" `Quick
            test_multi_object_transfer_atomic;
          Alcotest.test_case "gcp isolation" `Quick
            test_gcp_isolation_no_lost_updates;
          Alcotest.test_case "lcp local consistency" `Quick
            test_lcp_local_consistency;
          Alcotest.test_case "read-only gcp releases locks" `Quick
            test_read_only_gcp_releases_locks;
        ] );
      ( "failures",
        [
          Alcotest.test_case "deadlock broken and retried" `Quick
            test_deadlock_broken_and_retried;
          Alcotest.test_case "abort_thread releases locks" `Quick
            test_abort_thread_releases_locks;
          Alcotest.test_case "s-threads bypass locks" `Quick
            test_mixed_s_bypasses_locks;
          Alcotest.test_case "in-doubt participant learns commit" `Quick
            test_indoubt_participant_learns_commit;
          Alcotest.test_case "money conserved under server crashes" `Slow
            test_money_conserved_under_random_server_crashes;
          Alcotest.test_case "name bindings survive compute crash" `Quick
            test_name_bindings_survive_compute_crash;
        ] );
    ]
