test/test_apps.ml: Alcotest Apps Array Atomicity Char Clouds Cluster Ctx Ivar List Memory Obj_class Object_manager Printexc Printf Ra Sim String Thread Time Value
