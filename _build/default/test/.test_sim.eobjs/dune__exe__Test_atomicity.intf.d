test/test_atomicity.mli:
