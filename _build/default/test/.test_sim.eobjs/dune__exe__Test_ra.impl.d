test/test_ra.ml: Alcotest Bytes Cpu Hashtbl Isiba List Mmu Net Node Page Params Partition Printf QCheck QCheck_alcotest Ra Semaphore Sim Sysname Time Virtual_space
