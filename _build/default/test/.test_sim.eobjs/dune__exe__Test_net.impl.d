test/test_net.ml: Alcotest Ethernet Fault Frame List Net Nic QCheck QCheck_alcotest Sim Time
