test/test_clouds.mli:
