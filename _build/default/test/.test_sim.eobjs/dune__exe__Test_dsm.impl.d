test/test_dsm.ml: Alcotest Bytes Char Dsm Engine Gen List Net Printf QCheck QCheck_alcotest Ra Ratp Semaphore Sim Store String Time
