test/test_store.ml: Alcotest Bytes List Ra Semaphore Sim Store Time
