test/test_ratp.ml: Alcotest Endpoint Engine Ftp_sim List Net Nfs_sim Packet Printf QCheck QCheck_alcotest Ratp Semaphore Sim String Time
