test/test_pet.ml: Alcotest Array Atomicity Clouds Cluster Ctx Int List Memory Obj_class Object_manager Pet Printf Ra Ratp Sim Time Value
