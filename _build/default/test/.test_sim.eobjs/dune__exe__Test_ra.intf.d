test/test_ra.mli:
