test/test_ratp.mli:
