test/test_sim.ml: Alcotest Condition Engine Gen Heap Int Ivar List Mailbox Mutex Printf QCheck QCheck_alcotest Rng Rwlock Semaphore Sim Stats Time Trace
